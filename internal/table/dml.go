package table

import (
	"bytes"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/sim"
)

// LookupState classifies a Lookup result.
type LookupState int

const (
	// LookupAbsent: no version of the key is visible at the snapshot.
	LookupAbsent LookupState = iota
	// LookupLive: a visible value exists.
	LookupLive
	// LookupDeleted: the newest visible version is a tombstone.
	LookupDeleted
)

// Get returns the row payload of key visible to txn.
func (pt *Partition) Get(p *sim.Proc, txn *cc.Txn, key []byte) ([]byte, bool, error) {
	v, state, err := pt.Lookup(p, txn, key)
	return v, state == LookupLive, err
}

// Lookup is Get distinguishing an absent key from a visible tombstone.
// Migration routing needs the distinction: a committed tombstone at a
// range's new location is authoritative and must not fall back to (and
// resurrect) the old location's copy.
func (pt *Partition) Lookup(p *sim.Proc, txn *cc.Txn, key []byte) ([]byte, LookupState, error) {
	if err := pt.down(); err != nil {
		return nil, LookupAbsent, err
	}
	if err := pt.tooOld(txn); err != nil {
		return nil, LookupAbsent, err
	}
	pt.stats.Reads++
	pt.deps.compute(p, pt.deps.CPUPerOp)
	if txn.Mode == cc.Locking {
		return pt.lookupLocking(p, txn, key)
	}
	tr, err := pt.readTree(txn, key)
	if err != nil {
		return nil, LookupAbsent, err
	}
	leaf, err := readLeaf(p, tr, key)
	if err != nil {
		return nil, LookupAbsent, err
	}
	v, exists := pt.Store.VisibleVersion(txn, string(key), leaf)
	switch {
	case !exists:
		return nil, LookupAbsent, nil
	case v.Deleted:
		return nil, LookupDeleted, nil
	}
	return v.Val, LookupLive, nil
}

func (pt *Partition) lookupLocking(p *sim.Proc, txn *cc.Txn, key []byte) ([]byte, LookupState, error) {
	lm, to := pt.deps.Locks, pt.deps.LockTimeout
	if err := lm.Lock(p, txn, pt.lockName(), cc.LockIR, to); err != nil {
		return nil, LookupAbsent, err
	}
	if err := lm.Lock(p, txn, pt.keyLockName(key), cc.LockR, to); err != nil {
		return nil, LookupAbsent, err
	}
	tr, err := pt.readTree(txn, key)
	if err != nil {
		return nil, LookupAbsent, err
	}
	leaf, err := readLeaf(p, tr, key)
	switch {
	case err != nil || leaf == nil:
		return nil, LookupAbsent, err
	case leaf.Deleted:
		return nil, LookupDeleted, nil
	}
	return leaf.Val, LookupLive, nil
}

// Put inserts or updates key with payload under txn.
func (pt *Partition) Put(p *sim.Proc, txn *cc.Txn, key, payload []byte) error {
	return pt.write(p, txn, key, payload, false)
}

// Delete removes key under txn (a no-op if absent, like SQL DELETE).
func (pt *Partition) Delete(p *sim.Proc, txn *cc.Txn, key []byte) error {
	return pt.write(p, txn, key, nil, true)
}

func (pt *Partition) write(p *sim.Proc, txn *cc.Txn, key, payload []byte, deleted bool) error {
	if err := pt.down(); err != nil {
		return err
	}
	if !txn.Active() {
		return cc.ErrTxnNotActive
	}
	pt.stats.Writes++
	pt.deps.compute(p, pt.deps.CPUPerOp)
	if txn.Mode == cc.Locking {
		return pt.writeLocking(p, txn, key, payload, deleted)
	}

	lm, to := pt.deps.Locks, pt.deps.LockTimeout
	// IX on the partition announces write activity to segment movers,
	// which take R on the same name ("a read lock is acquired on the
	// source partition, waiting for pre-existing queries to finish
	// updating the partition", Sect. 4.3). The lock must precede routing:
	// a writer that queued behind a mover would otherwise stage a write
	// for a range that left the partition while it waited.
	if err := lm.Lock(p, txn, pt.lockName(), cc.LockIX, to); err != nil {
		return err
	}
	tr, _, err := pt.writeTree(p, key)
	if err != nil {
		return err
	}
	leaf, err := readLeaf(p, tr, key)
	if err != nil {
		return err
	}
	var leafTS cc.Timestamp
	if leaf != nil {
		leafTS = leaf.TS
	}
	ks := string(key)
	if err := pt.Store.AcquireWriteIntent(p, txn, ks, leafTS, to); err != nil {
		return err
	}
	if _, already := pt.Store.HasIntent(txn, ks); !already {
		pt.pending[txn.ID] = append(pt.pending[txn.ID], ks)
	}
	pt.Store.StagePending(txn, ks, deleted, bytes.Clone(payload))
	return nil
}

func (pt *Partition) writeLocking(p *sim.Proc, txn *cc.Txn, key, payload []byte, deleted bool) error {
	lm, to := pt.deps.Locks, pt.deps.LockTimeout
	if err := lm.Lock(p, txn, pt.lockName(), cc.LockIX, to); err != nil {
		return err
	}
	tr, segID, err := pt.writeTree(p, key)
	if err != nil {
		return err
	}
	if err := lm.Lock(p, txn, pt.segLockName(segID), cc.LockIX, to); err != nil {
		return err
	}
	if err := lm.Lock(p, txn, pt.keyLockName(key), cc.LockX, to); err != nil {
		return err
	}
	old, err := readLeaf(p, tr, key)
	if err != nil {
		return err
	}
	return pt.applyWrite(p, txn, tr, key, old, payload, deleted)
}

// applyWrite performs an immediate (locking-mode) tree modification with
// logging and undo registration.
func (pt *Partition) applyWrite(p *sim.Proc, txn *cc.Txn, tr *btree.Tree, key []byte, old *cc.Version, payload []byte, deleted bool) error {
	newVer := cc.Version{TS: txn.Begin, Deleted: deleted, Val: bytes.Clone(payload)}
	rec := pt.logRecord(txn, key, old, newVer)
	lsn := pt.deps.Log.Append(rec)
	keyCopy := bytes.Clone(key)
	if deleted {
		if _, err := pt.treeDelete(p, keyCopy, lsn); err != nil {
			return err
		}
	} else {
		if _, err := pt.treePut(p, keyCopy, EncodeValue(newVer), lsn); err != nil {
			return err
		}
	}
	oldCopy := cloneVersion(old)
	// Compensations route through the partition, not the captured tree: a
	// segment split may re-home the record between do and undo.
	txn.PushUndo(func(up *sim.Proc) {
		if oldCopy == nil {
			pt.treeDelete(up, keyCopy, 0)
		} else {
			pt.treePut(up, keyCopy, EncodeValue(*oldCopy), 0)
		}
	})
	return nil
}

func cloneVersion(v *cc.Version) *cc.Version {
	if v == nil {
		return nil
	}
	c := *v
	c.Val = bytes.Clone(v.Val)
	return &c
}

// Scan iterates records with keys in [lo, hi) visible to txn, in key order.
// fn returning false stops the scan. Under locking mode the scan takes an
// IR lock on the partition and R locks on every record it emits (held to
// end of transaction, as MGL-RX prescribes).
func (pt *Partition) Scan(p *sim.Proc, txn *cc.Txn, lo, hi []byte, fn func(key, payload []byte) bool) error {
	return pt.scan(p, txn, lo, hi, func(k, v []byte, deleted bool) bool {
		if deleted {
			return true
		}
		return fn(k, v)
	})
}

// ScanWithTombstones is Scan also delivering visible tombstones (with
// deleted=true and a nil payload). Migration routing uses it so a range's
// new location can suppress stale copies at the old one: a key the new
// location has any committed version for — live or deleted — must not be
// served from the old copy.
func (pt *Partition) ScanWithTombstones(p *sim.Proc, txn *cc.Txn, lo, hi []byte, fn func(key, payload []byte, deleted bool) bool) error {
	return pt.scan(p, txn, lo, hi, fn)
}

func (pt *Partition) scan(p *sim.Proc, txn *cc.Txn, lo, hi []byte, fn func(key, payload []byte, deleted bool) bool) error {
	if err := pt.down(); err != nil {
		return err
	}
	if err := pt.tooOld(txn); err != nil {
		return err
	}
	if txn.Mode == cc.Locking {
		if err := pt.deps.Locks.Lock(p, txn, pt.lockName(), cc.LockIR, pt.deps.LockTimeout); err != nil {
			return err
		}
	}
	// Committed writes whose tree install is still in flight have no leaf
	// for the tree walk to find (fresh inserts on a migration target, for
	// example); merge them into the stream in key order so the scan cannot
	// miss records its snapshot covers. Any such write's commit timestamp
	// predates the reader's snapshot — and hence this scan's start — so the
	// set captured here is complete for the whole walk. Locking-mode scans
	// need the same merge: an MVCC writer takes no key locks, so its
	// committed-but-installing insert is equally invisible to the tree walk
	// of an MGL reader. (Merged records are emitted without per-key R locks:
	// there is no leaf to lock yet, and the committed writer holds no lock
	// the reader could conflict with.)
	pend := pt.Store.CommittedPending(txn, lo, hi)
	pi := 0
	consumerStop := false
	send := func(k, v []byte, deleted bool) bool {
		if !fn(k, v, deleted) {
			consumerStop = true
			return false
		}
		return true
	}
	deliver := func(k, v []byte, deleted bool) bool {
		for pi < len(pend) {
			c := bytes.Compare([]byte(pend[pi].Key), k)
			if c > 0 {
				break
			}
			pv := pend[pi]
			pi++
			if c == 0 {
				// The install landed mid-scan and the tree emitted it; the
				// tree path already resolved the same version.
				break
			}
			if !send([]byte(pv.Key), pv.Ver.Val, pv.Ver.Deleted) {
				return false
			}
		}
		return send(k, v, deleted)
	}
	// flushPending delivers the pending-committed writes beyond the last
	// tree record once the walk completes (never after a consumer stop).
	flushPending := func() {
		for !consumerStop && pi < len(pend) {
			pv := pend[pi]
			pi++
			send([]byte(pv.Key), pv.Ver.Val, pv.Ver.Deleted)
		}
	}
	emit := func(tr *btree.Tree, k, raw []byte) (bool, error) {
		if err := pt.down(); err != nil {
			// The node power-failed at a blocking point mid-scan; the
			// version chains are gone, so continuing could skip records.
			return false, err
		}
		pt.stats.ScannedTuples++
		pt.deps.compute(p, pt.deps.CPUPerTuple)
		leaf, err := DecodeValue(raw)
		if err != nil {
			return false, err
		}
		ks := string(k)
		leafV := &leaf
		if pt.Store.StaleLeaf(ks, leaf.TS) {
			// The batched cursor copied this leaf before a later install
			// landed: re-read the record's current tree version. A snapshot
			// reader then resolves via the leaf or the history versions the
			// newer installs pushed; a locking reader must serve the current
			// committed state, which only the fresh leaf holds.
			leafV, err = readLeaf(p, tr, k)
			if err != nil {
				return false, err
			}
		}
		if txn.Mode == cc.Locking {
			if leafV == nil {
				return true, nil // vacuumed between the copy and the re-read
			}
			if leafV.Deleted {
				return deliver(k, nil, true), nil
			}
			if err := pt.deps.Locks.Lock(p, txn, pt.keyLockName(k), cc.LockR, pt.deps.LockTimeout); err != nil {
				return false, err
			}
			return deliver(k, leafV.Val, false), nil
		}
		v, exists := pt.Store.VisibleVersion(txn, ks, leafV)
		if !exists {
			return true, nil
		}
		if v.Deleted {
			return deliver(k, nil, true), nil
		}
		return deliver(k, v.Val, false), nil
	}

	if pt.Scheme != Physiological {
		var scanErr error
		err := pt.span.Scan(p, lo, hi, func(k, raw []byte) bool {
			cont, err := emit(pt.span, k, raw)
			if err != nil {
				scanErr = err
				return false
			}
			return cont
		})
		if err == nil {
			err = scanErr
		}
		if err == nil {
			flushPending()
		}
		return err
	}

	// Physiological: walk mini-partitions in key order. The responsible
	// segment is re-resolved after each one finishes, so segment splits and
	// detachments during the scan (at blocking points) cannot skip records:
	// a split only narrows the current handle and adds its upper half to
	// the right, and a detached handle stays readable as a ghost for
	// snapshots predating the move.
	cur := lo
	// lastSeen tracks the largest key this walk has processed. The backing
	// array keeps typical keys off the heap: scans run per executor batch
	// and must not allocate in steady state (longer keys fall back to a
	// heap append).
	var lastArr [64]byte
	lastSeen := lastArr[:0]
	for {
		h := pt.nextSegFor(txn, cur)
		if h == nil || (hi != nil && bytes.Compare(h.Low, hi) >= 0) {
			flushPending()
			return nil
		}
		slo, shi := maxKey(cur, h.Low), minKey(hi, h.High)
		stopped := false
		var scanErr error
		err := h.Tree.Scan(p, slo, shi, func(k, raw []byte) bool {
			lastSeen = append(lastSeen[:0], k...)
			cont, err := emit(h.Tree, k, raw)
			if err != nil {
				scanErr = err
				return false
			}
			if !cont {
				stopped = true
			}
			return cont
		})
		if err == nil {
			err = scanErr
		}
		if err != nil || stopped {
			return err
		}
		if h.High == nil { // note: re-read after the scan (splits narrow it)
			flushPending()
			return nil
		}
		cur = h.High
		if len(lastSeen) > 0 && bytes.Compare(lastSeen, cur) >= 0 {
			// A concurrent split narrowed the handle below keys the batched
			// cursor had already delivered from the pre-split leaves; the
			// records above the new boundary moved to the right-hand
			// segment, and re-entering it at h.High would emit them twice.
			cur = append(bytes.Clone(lastSeen), 0)
		}
	}
}

// nextSegFor returns the segment (live, or ghost readable by txn) serving
// scan position cur (nil = start): among handles with High > cur, the one
// with the smallest Low.
func (pt *Partition) nextSegFor(txn *cc.Txn, cur []byte) *SegHandle {
	var best *SegHandle
	consider := func(h *SegHandle) {
		if h.Tree == nil {
			return
		}
		if cur != nil && h.High != nil && bytes.Compare(h.High, cur) <= 0 {
			return
		}
		if best == nil || bytes.Compare(h.Low, best.Low) < 0 {
			best = h
		}
	}
	for _, h := range pt.segs {
		consider(h)
	}
	for _, g := range pt.ghosts {
		if txn.Begin <= g.moveTS {
			consider(g.handle)
		}
	}
	return best
}

func maxKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) >= 0 {
		return a
	}
	return b
}

func minKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) <= 0 {
		return a
	}
	return b
}

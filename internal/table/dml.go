package table

import (
	"bytes"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/sim"
)

// Get returns the row payload of key visible to txn.
func (pt *Partition) Get(p *sim.Proc, txn *cc.Txn, key []byte) ([]byte, bool, error) {
	pt.stats.Reads++
	pt.deps.compute(p, pt.deps.CPUPerOp)
	if txn.Mode == cc.Locking {
		return pt.getLocking(p, txn, key)
	}
	tr, err := pt.readTree(txn, key)
	if err != nil {
		return nil, false, err
	}
	leaf, err := readLeaf(p, tr, key)
	if err != nil {
		return nil, false, err
	}
	v, ok := pt.Store.ReadVisible(txn, string(key), leaf)
	if !ok {
		return nil, false, nil
	}
	return v.Val, true, nil
}

func (pt *Partition) getLocking(p *sim.Proc, txn *cc.Txn, key []byte) ([]byte, bool, error) {
	lm, to := pt.deps.Locks, pt.deps.LockTimeout
	if err := lm.Lock(p, txn, pt.lockName(), cc.LockIR, to); err != nil {
		return nil, false, err
	}
	if err := lm.Lock(p, txn, pt.keyLockName(key), cc.LockR, to); err != nil {
		return nil, false, err
	}
	tr, err := pt.readTree(txn, key)
	if err != nil {
		return nil, false, err
	}
	leaf, err := readLeaf(p, tr, key)
	if err != nil || leaf == nil || leaf.Deleted {
		return nil, false, err
	}
	return leaf.Val, true, nil
}

// Put inserts or updates key with payload under txn.
func (pt *Partition) Put(p *sim.Proc, txn *cc.Txn, key, payload []byte) error {
	return pt.write(p, txn, key, payload, false)
}

// Delete removes key under txn (a no-op if absent, like SQL DELETE).
func (pt *Partition) Delete(p *sim.Proc, txn *cc.Txn, key []byte) error {
	return pt.write(p, txn, key, nil, true)
}

func (pt *Partition) write(p *sim.Proc, txn *cc.Txn, key, payload []byte, deleted bool) error {
	if !txn.Active() {
		return cc.ErrTxnNotActive
	}
	pt.stats.Writes++
	pt.deps.compute(p, pt.deps.CPUPerOp)
	if txn.Mode == cc.Locking {
		return pt.writeLocking(p, txn, key, payload, deleted)
	}

	lm, to := pt.deps.Locks, pt.deps.LockTimeout
	// IX on the partition announces write activity to segment movers,
	// which take R on the same name ("a read lock is acquired on the
	// source partition, waiting for pre-existing queries to finish
	// updating the partition", Sect. 4.3). The lock must precede routing:
	// a writer that queued behind a mover would otherwise stage a write
	// for a range that left the partition while it waited.
	if err := lm.Lock(p, txn, pt.lockName(), cc.LockIX, to); err != nil {
		return err
	}
	tr, _, err := pt.writeTree(p, key)
	if err != nil {
		return err
	}
	leaf, err := readLeaf(p, tr, key)
	if err != nil {
		return err
	}
	var leafTS cc.Timestamp
	if leaf != nil {
		leafTS = leaf.TS
	}
	ks := string(key)
	if err := pt.Store.AcquireWriteIntent(p, txn, ks, leafTS, to); err != nil {
		return err
	}
	if _, already := pt.Store.HasIntent(txn, ks); !already {
		pt.pending[txn.ID] = append(pt.pending[txn.ID], ks)
	}
	pt.Store.StagePending(txn, ks, deleted, bytes.Clone(payload))
	return nil
}

func (pt *Partition) writeLocking(p *sim.Proc, txn *cc.Txn, key, payload []byte, deleted bool) error {
	lm, to := pt.deps.Locks, pt.deps.LockTimeout
	if err := lm.Lock(p, txn, pt.lockName(), cc.LockIX, to); err != nil {
		return err
	}
	tr, segID, err := pt.writeTree(p, key)
	if err != nil {
		return err
	}
	if err := lm.Lock(p, txn, pt.segLockName(segID), cc.LockIX, to); err != nil {
		return err
	}
	if err := lm.Lock(p, txn, pt.keyLockName(key), cc.LockX, to); err != nil {
		return err
	}
	old, err := readLeaf(p, tr, key)
	if err != nil {
		return err
	}
	return pt.applyWrite(p, txn, tr, key, old, payload, deleted)
}

// applyWrite performs an immediate (locking-mode) tree modification with
// logging and undo registration.
func (pt *Partition) applyWrite(p *sim.Proc, txn *cc.Txn, tr *btree.Tree, key []byte, old *cc.Version, payload []byte, deleted bool) error {
	newVer := cc.Version{TS: txn.Begin, Deleted: deleted, Val: bytes.Clone(payload)}
	rec := pt.logRecord(txn, key, old, newVer)
	lsn := pt.deps.Log.Append(rec)
	keyCopy := bytes.Clone(key)
	if deleted {
		if _, err := tr.Delete(p, keyCopy, lsn); err != nil {
			return err
		}
	} else {
		if _, err := pt.treePut(p, keyCopy, EncodeValue(newVer), lsn); err != nil {
			return err
		}
	}
	oldCopy := cloneVersion(old)
	txn.PushUndo(func(up *sim.Proc) {
		if oldCopy == nil {
			tr.Delete(up, keyCopy, 0)
		} else {
			tr.Put(up, keyCopy, EncodeValue(*oldCopy), 0)
		}
	})
	return nil
}

func cloneVersion(v *cc.Version) *cc.Version {
	if v == nil {
		return nil
	}
	c := *v
	c.Val = bytes.Clone(v.Val)
	return &c
}

// Scan iterates records with keys in [lo, hi) visible to txn, in key order.
// fn returning false stops the scan. Under locking mode the scan takes an
// IR lock on the partition and R locks on every record it emits (held to
// end of transaction, as MGL-RX prescribes).
func (pt *Partition) Scan(p *sim.Proc, txn *cc.Txn, lo, hi []byte, fn func(key, payload []byte) bool) error {
	if txn.Mode == cc.Locking {
		if err := pt.deps.Locks.Lock(p, txn, pt.lockName(), cc.LockIR, pt.deps.LockTimeout); err != nil {
			return err
		}
	}
	emit := func(k, raw []byte) (bool, error) {
		pt.stats.ScannedTuples++
		pt.deps.compute(p, pt.deps.CPUPerTuple)
		leaf, err := DecodeValue(raw)
		if err != nil {
			return false, err
		}
		if txn.Mode == cc.Locking {
			if leaf.Deleted {
				return true, nil
			}
			if err := pt.deps.Locks.Lock(p, txn, pt.keyLockName(k), cc.LockR, pt.deps.LockTimeout); err != nil {
				return false, err
			}
			return fn(k, leaf.Val), nil
		}
		v, ok := pt.Store.ReadVisible(txn, string(k), &leaf)
		if !ok {
			return true, nil
		}
		return fn(k, v.Val), nil
	}

	if pt.Scheme != Physiological {
		var scanErr error
		err := pt.span.Scan(p, lo, hi, func(k, raw []byte) bool {
			cont, err := emit(k, raw)
			if err != nil {
				scanErr = err
				return false
			}
			return cont
		})
		if err == nil {
			err = scanErr
		}
		return err
	}

	// Physiological: walk mini-partitions in key order. The responsible
	// segment is re-resolved after each one finishes, so segment splits and
	// detachments during the scan (at blocking points) cannot skip records:
	// a split only narrows the current handle and adds its upper half to
	// the right, and a detached handle stays readable as a ghost for
	// snapshots predating the move.
	cur := lo
	for {
		h := pt.nextSegFor(txn, cur)
		if h == nil || (hi != nil && bytes.Compare(h.Low, hi) >= 0) {
			return nil
		}
		slo, shi := maxKey(cur, h.Low), minKey(hi, h.High)
		stopped := false
		var scanErr error
		err := h.Tree.Scan(p, slo, shi, func(k, raw []byte) bool {
			cont, err := emit(k, raw)
			if err != nil {
				scanErr = err
				return false
			}
			if !cont {
				stopped = true
			}
			return cont
		})
		if err == nil {
			err = scanErr
		}
		if err != nil || stopped {
			return err
		}
		if h.High == nil { // note: re-read after the scan (splits narrow it)
			return nil
		}
		cur = h.High
	}
}

// nextSegFor returns the segment (live, or ghost readable by txn) serving
// scan position cur (nil = start): among handles with High > cur, the one
// with the smallest Low.
func (pt *Partition) nextSegFor(txn *cc.Txn, cur []byte) *SegHandle {
	var best *SegHandle
	consider := func(h *SegHandle) {
		if h.Tree == nil {
			return
		}
		if cur != nil && h.High != nil && bytes.Compare(h.High, cur) <= 0 {
			return
		}
		if best == nil || bytes.Compare(h.Low, best.Low) < 0 {
			best = h
		}
	}
	for _, h := range pt.segs {
		consider(h)
	}
	for _, g := range pt.ghosts {
		if txn.Begin <= g.moveTS {
			consider(g.handle)
		}
	}
	return best
}

func maxKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) >= 0 {
		return a
	}
	return b
}

func minKey(a, b []byte) []byte {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if bytes.Compare(a, b) <= 0 {
		return a
	}
	return b
}

package table

import (
	"bytes"
	"fmt"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
)

// BulkLoad fills an empty partition from records supplied in strictly
// ascending key order, stamped with commit timestamp ts. Loading bypasses
// the buffer pool and charges no simulation time: it models the state of
// the database *before* the measured experiment begins (data generation is
// not part of any of the paper's measurements).
//
// Physiological partitions are built as a sequence of mini-partitions, each
// a self-contained segment filled to fillFraction; spanning partitions get
// one tree laid out across as many segments as needed.
func (pt *Partition) BulkLoad(p *sim.Proc, fillFraction float64, next func() (key, payload []byte, ok bool)) error {
	if fillFraction <= 0 || fillFraction > 1 {
		fillFraction = 0.7
	}
	if pt.Scheme != Physiological {
		return pt.bulkLoadSpanning(p, fillFraction, next)
	}
	return pt.bulkLoadPhysio(p, fillFraction, next)
}

func (pt *Partition) bulkLoadPhysio(p *sim.Proc, fill float64, next func() (key, payload []byte, ok bool)) error {
	if len(pt.segs) != 0 {
		return fmt.Errorf("table: bulk load into non-empty partition %d", pt.ID)
	}
	var (
		pending     []byte // one look-ahead record
		pendingKey  []byte
		exhausted   bool
		prevHigh    = bytes.Clone(pt.Low)
		segBudget   int64
		recordsSeen int
	)
	pull := func() (k, v []byte, ok bool) {
		if pendingKey != nil {
			k, v = pendingKey, pending
			pendingKey, pending = nil, nil
			return k, v, true
		}
		if exhausted {
			return nil, nil, false
		}
		k, v, ok = next()
		if !ok {
			exhausted = true
		}
		return k, v, ok
	}

	for {
		k, v, ok := pull()
		if !ok {
			break
		}
		// Start a new mini-partition.
		seg, err := pt.deps.Factory.NewSegment(p)
		if err != nil {
			return err
		}
		segBudget = int64(float64(int64(seg.Capacity())*int64(seg.PageSize())) * fill)
		h := &SegHandle{
			Seg:   seg,
			Pager: pt.deps.Factory.Pager(seg),
			Low:   prevHigh,
		}
		mem := btree.MemPager{Seg: seg}
		h.Tree = btree.New(mem, 0, func(no storage.PageNo) { seg.TreeRoot = no })
		var used int64
		firstRecord := true
		err = h.Tree.BulkLoad(p, 0.95, func() ([]byte, []byte, bool) {
			if !firstRecord {
				var ok bool
				k, v, ok = pull()
				if !ok {
					return nil, nil, false
				}
			}
			firstRecord = false
			cell := int64(len(k) + len(v) + 15)
			if used+cell > segBudget && used > 0 {
				// Segment full: push the record back for the next one.
				pendingKey, pending = k, v
				return nil, nil, false
			}
			used += cell
			recordsSeen++
			return k, v, true
		})
		if err != nil {
			return err
		}
		// Determine the boundary: the next record's key (already pulled
		// back) or the partition bound.
		if pendingKey != nil {
			h.High = bytes.Clone(pendingKey)
		} else {
			h.High = bytes.Clone(pt.High)
		}
		seg.LowKey, seg.HighKey = h.Low, h.High
		// Re-wire the tree onto the runtime (buffered) pager.
		h.Tree = btree.New(h.Pager, seg.TreeRoot, func(no storage.PageNo) { seg.TreeRoot = no })
		h.Tree.Serialize(pt.deps.Env)
		pt.segs = append(pt.segs, h)
		prevHigh = h.High
	}
	_ = recordsSeen
	return nil
}

func (pt *Partition) bulkLoadSpanning(p *sim.Proc, fill float64, next func() (key, payload []byte, ok bool)) error {
	if len(pt.segs) != 0 {
		return fmt.Errorf("table: bulk load into non-empty partition %d", pt.ID)
	}
	lp := &loaderPager{pt: pt}
	builder := btree.New(lp, 0, nil)
	err := builder.BulkLoad(p, fill, next)
	if err != nil {
		return err
	}
	// Hand the loaded tree over to the runtime pager.
	pt.span = btree.New(&spanningPager{pt: pt}, builder.Root(), nil)
	pt.span.Serialize(pt.deps.Env)
	return nil
}

// loaderPager mirrors spanningPager's virtual page numbering but touches
// segment bytes directly (zero cost), so a tree built with it is readable
// through the buffered spanningPager afterwards.
type loaderPager struct {
	pt *Partition
}

func (lp *loaderPager) capacity() int {
	if len(lp.pt.segs) > 0 {
		return lp.pt.segs[0].Seg.Capacity()
	}
	return 0
}

func (lp *loaderPager) resolve(no storage.PageNo) (*storage.Segment, storage.PageNo) {
	cap := lp.capacity()
	idx := int(no) / cap
	return lp.pt.segs[idx].Seg, storage.PageNo(int(no) % cap)
}

// Read returns page bytes directly.
func (lp *loaderPager) Read(_ *sim.Proc, no storage.PageNo) (storage.Page, btree.Release, error) {
	seg, local := lp.resolve(no)
	return seg.Page(local), func() {}, nil
}

// Write returns page bytes directly.
func (lp *loaderPager) Write(p *sim.Proc, no storage.PageNo) (storage.Page, btree.Release, error) {
	return lp.Read(p, no)
}

// Alloc allocates in the newest segment, growing as needed.
func (lp *loaderPager) Alloc(p *sim.Proc) (storage.PageNo, storage.Page, btree.Release, error) {
	pt := lp.pt
	if len(pt.segs) == 0 {
		if err := lp.grow(p); err != nil {
			return 0, nil, nil, err
		}
	}
	last := len(pt.segs) - 1
	no, ok := pt.segs[last].Seg.AllocPage()
	if !ok {
		if err := lp.grow(p); err != nil {
			return 0, nil, nil, err
		}
		last = len(pt.segs) - 1
		no, ok = pt.segs[last].Seg.AllocPage()
		if !ok {
			return 0, nil, nil, btree.ErrSegmentFull
		}
	}
	v := storage.PageNo(last*lp.capacity()) + no
	return v, pt.segs[last].Seg.Page(no), func() {}, nil
}

func (lp *loaderPager) grow(p *sim.Proc) error {
	seg, err := lp.pt.deps.Factory.NewSegment(p)
	if err != nil {
		return err
	}
	lp.pt.segs = append(lp.pt.segs, &SegHandle{
		Seg:   seg,
		Pager: lp.pt.deps.Factory.Pager(seg),
	})
	return nil
}

// Free releases a page.
func (lp *loaderPager) Free(_ *sim.Proc, no storage.PageNo) error {
	seg, local := lp.resolve(no)
	seg.FreePage(local)
	return nil
}

// PageSize returns the configured page size.
func (lp *loaderPager) PageSize() int {
	if len(lp.pt.segs) > 0 {
		return lp.pt.segs[0].Seg.PageSize()
	}
	if lp.pt.deps.PageSize > 0 {
		return lp.pt.deps.PageSize
	}
	return 8192
}

// EncodeLoadValue builds the tree value bulk loaders should supply: a
// committed version at ts with the given payload.
func EncodeLoadValue(ts cc.Timestamp, payload []byte) []byte {
	return EncodeValue(cc.Version{TS: ts, Val: payload})
}

package table

import (
	"fmt"
	"testing"
	"time"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/wal"
)

// gatedFactory wraps memFactory so tests can park a tree install mid-flight:
// while blocked, every pager Write waits on the gate, freezing a commit
// inside its treePut exactly like a slow disk would.
type gatedFactory struct {
	inner   memFactory
	env     *sim.Env
	blocked bool
	gate    *sim.Signal
}

func newGatedFactory(env *sim.Env, segPages int) *gatedFactory {
	return &gatedFactory{
		inner: memFactory{pageSize: 512, segPages: segPages},
		env:   env,
		gate:  sim.NewSignal(env),
	}
}

func (f *gatedFactory) open() {
	f.blocked = false
	f.gate.Fire()
}

func (f *gatedFactory) NewSegment(p *sim.Proc) (*storage.Segment, error) {
	return f.inner.NewSegment(p)
}
func (f *gatedFactory) DropSegment(p *sim.Proc, id storage.SegID) { f.inner.DropSegment(p, id) }
func (f *gatedFactory) Pager(seg *storage.Segment) btree.Pager {
	return &gatedPager{Pager: f.inner.Pager(seg), f: f}
}

type gatedPager struct {
	btree.Pager
	f *gatedFactory
}

func (g *gatedPager) Write(p *sim.Proc, no storage.PageNo) (storage.Page, btree.Release, error) {
	for g.f.blocked {
		g.f.gate.Wait(p)
	}
	return g.Pager.Write(p, no)
}

// TestLockingScanSeesCommittedInstallingWrite parks an MVCC commit inside
// its tree install (committed timestamp assigned, no leaf yet) and runs a
// locking-mode scan over the range: the scan must deliver the committed
// write via the version store's committed-pending merge, exactly as
// snapshot-isolation scans do. Before the parity fix the record was
// invisible — the tree walk found no leaf and the locking path never
// consulted the store.
func TestLockingScanSeesCommittedInstallingWrite(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	oracle := cc.NewOracle()
	gf := newGatedFactory(env, 64)
	deps := Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, nullDevice{}),
		Factory:     gf,
		LockTimeout: time.Second,
		PageSize:    512,
	}
	pt := NewPartition(1, simpleSchema(), Logical, nil, nil, deps)

	var sawKeys []int64
	var sawVals []string
	env.Spawn("test", func(p *sim.Proc) {
		// Keys 1 and 3 are committed and installed normally.
		w := oracle.Begin(cc.SnapshotIsolation)
		for _, k := range []int64{1, 3} {
			if err := pt.Put(p, w, intKey(k), []byte(fmt.Sprintf("base-%d", k))); err != nil {
				t.Fatal(err)
			}
		}
		if err := CommitTxn(p, w, pt); err != nil {
			t.Fatal(err)
		}
		// Key 2's writer commits, but its install parks on the gate.
		w2 := oracle.Begin(cc.SnapshotIsolation)
		if err := pt.Put(p, w2, intKey(2), []byte("installing")); err != nil {
			t.Fatal(err)
		}
		gf.blocked = true
		env.Spawn("committer", func(cp *sim.Proc) {
			if err := CommitTxn(cp, w2, pt); err != nil {
				t.Errorf("gated commit: %v", err)
			}
		})
		p.Sleep(time.Millisecond) // let the committer reach the gate
		if w2.State != cc.TxnCommitted {
			t.Fatal("writer not committed yet; the gate did not park the install")
		}
		// Model the decided-then-installing window of a distributed commit:
		// the fate is sealed (decision record durable) while the tree install
		// is still in flight. Without the settle the reader's snapshot would
		// be capped below the not-yet-durable commit and correctly miss it —
		// the parity property under test only applies to settled commits.
		oracle.SettleCommit(w2)

		r := oracle.Begin(cc.Locking)
		err := pt.Scan(p, r, nil, nil, func(k, v []byte) bool {
			d, _, _ := keycodec.DecodeInt64(k)
			sawKeys = append(sawKeys, d)
			sawVals = append(sawVals, string(v))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		deps.Locks.ReleaseAll(r)
		oracle.Abort(r)
		gf.open() // release the parked install and drain
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sawKeys) != 3 || sawKeys[0] != 1 || sawKeys[1] != 2 || sawKeys[2] != 3 {
		t.Fatalf("locking scan keys = %v, want [1 2 3] (committed-but-installing write missed)", sawKeys)
	}
	if sawVals[1] != "installing" {
		t.Fatalf("key 2 = %q, want %q", sawVals[1], "installing")
	}
}

// TestInstallParkedBehindSplitIsReHomed reproduces a bug the TPC-C chaos
// oracle found: a tree install that waits for a concurrent segment split's
// writer lock resumes against a mini-partition the split has narrowed below
// the key, stranding the record in a tree no read routes to. The install
// must detect the narrowed range and re-home the record.
func TestInstallParkedBehindSplitIsReHomed(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	oracle := cc.NewOracle()
	gf := newGatedFactory(env, 64)
	deps := Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, nullDevice{}),
		Factory:     gf,
		LockTimeout: time.Minute,
		PageSize:    512,
	}
	pt := NewPartition(1, simpleSchema(), Physiological, nil, nil, deps)

	const n = 40
	probe := intKey(n - 2) // upper half: the split moves its range away
	env.Spawn("load", func(p *sim.Proc) {
		w := oracle.Begin(cc.SnapshotIsolation)
		for i := int64(0); i < n; i++ {
			if i == n-2 {
				continue // the probe key arrives later, mid-split
			}
			if err := pt.Put(p, w, intKey(i), []byte("base")); err != nil {
				t.Fatal(err)
			}
		}
		if err := CommitTxn(p, w, pt); err != nil {
			t.Fatal(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pt.Segments()) != 1 {
		t.Fatalf("want a single segment before the staged split, have %d", len(pt.Segments()))
	}

	// Stage the probe key, then park a split mid-surgery on the write gate;
	// the commit's install queues behind the split's writer lock and — when
	// the gate opens — resumes against the narrowed mini-partition.
	w := oracle.Begin(cc.SnapshotIsolation)
	env.Spawn("race", func(p *sim.Proc) {
		if err := pt.Put(p, w, probe, []byte("landed")); err != nil {
			t.Fatal(err)
		}
		gf.blocked = true
		seg0 := pt.Segments()[0]
		env.Spawn("splitter", func(sp *sim.Proc) {
			if err := pt.SplitSegment(sp, seg0); err != nil {
				t.Errorf("split: %v", err)
			}
		})
		env.Spawn("committer", func(cp *sim.Proc) {
			if err := CommitTxn(cp, w, pt); err != nil {
				t.Errorf("commit: %v", err)
			}
		})
		p.Sleep(time.Millisecond) // both parked: splitter on the gate, install on the lock
		gf.open()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pt.Segments()) < 2 {
		t.Fatalf("split did not happen: %d segments", len(pt.Segments()))
	}
	env.Spawn("check", func(p *sim.Proc) {
		r := oracle.Begin(cc.SnapshotIsolation)
		v, ok, err := pt.Get(p, r, probe)
		if err != nil || !ok || string(v) != "landed" {
			t.Errorf("probe key after racing split: %q ok=%v err=%v (stranded in a narrowed tree)", v, ok, err)
		}
		seen := 0
		if err := pt.Scan(p, r, nil, nil, func(k, _ []byte) bool {
			if string(k) == string(probe) {
				seen++
			}
			return true
		}); err != nil {
			t.Error(err)
		}
		if seen != 1 {
			t.Errorf("probe key seen %d times in scan, want 1", seen)
		}
		oracle.Abort(r)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestLockingScanRefreshesStaleLeaf commits an update underneath a running
// locking-mode scan, after the scan's batched cursor copied the leaf but
// before it emitted the record: the scan must detect the stale copy via the
// version store and re-read the current committed leaf. Before the parity
// fix it served the pre-update value from the copy.
func TestLockingScanRefreshesStaleLeaf(t *testing.T) {
	env := sim.NewEnv(1)
	defer env.Close()
	oracle := cc.NewOracle()
	deps := Deps{
		Env:         env,
		Oracle:      oracle,
		Locks:       cc.NewLockManager(env),
		Log:         wal.NewLog(env, nullDevice{}),
		Factory:     &memFactory{pageSize: 512, segPages: 64},
		LockTimeout: time.Second,
		PageSize:    512,
		// Per-tuple CPU makes each emit a blocking point, so the writer can
		// land between the cursor's leaf copy and the emit of key 5.
		Compute:     func(p *sim.Proc, d time.Duration) { p.Sleep(d) },
		CPUPerTuple: time.Millisecond,
	}
	pt := NewPartition(1, simpleSchema(), Logical, nil, nil, deps)

	got := map[int64]string{}
	env.Spawn("load", func(p *sim.Proc) {
		w := oracle.Begin(cc.SnapshotIsolation)
		for i := int64(0); i < 10; i++ {
			if err := pt.Put(p, w, intKey(i), []byte("v0")); err != nil {
				t.Fatal(err)
			}
		}
		if err := CommitTxn(p, w, pt); err != nil {
			t.Fatal(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	env.Spawn("scanner", func(p *sim.Proc) {
		r := oracle.Begin(cc.Locking)
		err := pt.Scan(p, r, nil, nil, func(k, v []byte) bool {
			d, _, _ := keycodec.DecodeInt64(k)
			got[d] = string(v)
			return true
		})
		if err != nil {
			t.Error(err)
		}
		deps.Locks.ReleaseAll(r)
		oracle.Abort(r)
	})
	env.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond) // scan is past key 1, far from key 5
		w := oracle.Begin(cc.SnapshotIsolation)
		if err := pt.Put(p, w, intKey(5), []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		if err := CommitTxn(p, w, pt); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("scan saw %d keys, want 10", len(got))
	}
	if got[5] != "v1" {
		t.Fatalf("key 5 = %q, want %q (stale batched leaf served to a locking scan)", got[5], "v1")
	}
}

package table

import (
	"encoding/binary"
	"fmt"

	"wattdb/internal/cc"
)

// Tree values carry MVCC metadata inline:
//
//	[0]    flags (bit 0: tombstone)
//	[1:9]  commit timestamp
//	[9:]   row payload
//
// Deleted records stay in the tree as tombstones until vacuum removes them,
// so old snapshots (and in-flight readers during record movement) can still
// resolve them through the version store.
const valueHeader = 9

const flagTombstone = 0x01

// EncodeValue builds a tree value from an MVCC version.
func EncodeValue(v cc.Version) []byte {
	buf := make([]byte, valueHeader+len(v.Val))
	if v.Deleted {
		buf[0] = flagTombstone
	}
	binary.LittleEndian.PutUint64(buf[1:9], uint64(v.TS))
	copy(buf[valueHeader:], v.Val)
	return buf
}

// DecodeValue parses a tree value into an MVCC version. The payload aliases
// buf.
func DecodeValue(buf []byte) (cc.Version, error) {
	if len(buf) < valueHeader {
		return cc.Version{}, fmt.Errorf("table: tree value of %d bytes", len(buf))
	}
	return cc.Version{
		TS:      cc.Timestamp(binary.LittleEndian.Uint64(buf[1:9])),
		Deleted: buf[0]&flagTombstone != 0,
		Val:     buf[valueHeader:],
	}, nil
}

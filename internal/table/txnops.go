package table

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"wattdb/internal/btree"
	"wattdb/internal/cc"
	"wattdb/internal/sim"
	"wattdb/internal/storage"
	"wattdb/internal/wal"
)

// Empty reports whether the partition holds no data at all: no live
// segments with records, no ghosts, no staged writes. Empty partitions can
// be dropped when quiescing a node.
func (pt *Partition) Empty() bool {
	if len(pt.ghosts) > 0 || len(pt.pending) > 0 {
		return false
	}
	for _, h := range pt.segs {
		if h.Seg.UsedPages() > 0 {
			return false
		}
	}
	return true
}

// MovementLockName is the lock a segment mover must hold in R mode to
// drain and exclude writers of this partition during the move.
func (pt *Partition) MovementLockName() string { return pt.lockName() }

// ChangedSince reports whether a key of [lo, hi) in this partition has a
// foreign write in flight or committed past txn's snapshot (see
// cc.VersionStore.ChangedSince).
func (pt *Partition) ChangedSince(txn *cc.Txn, lo, hi []byte) bool {
	return pt.Store.ChangedSince(txn, lo, hi, len(pt.pending[txn.ID]))
}

// HasPending reports whether txn staged writes in this partition.
func (pt *Partition) HasPending(txn *cc.Txn) bool {
	return len(pt.pending[txn.ID]) > 0
}

// LogPrepare appends redo images of txn's staged writes to the node's log
// (prepare-time DML logging): each pending key becomes a RecPrepDML or
// RecPrepDel record carrying the raw staged payload. The commit timestamp is
// unknown until the coordinator decides, so recovery stamps it when rolling
// an in-doubt branch forward. The caller forces the log through the
// follow-up prepare record, making the whole branch durable before the
// coordinator's commit point. Locking-mode transactions have nothing to
// image: their eager writes were logged (and only need the force).
func (pt *Partition) LogPrepare(txn *cc.Txn) {
	for _, ks := range pt.pending[txn.ID] {
		v, ok := pt.Store.HasIntent(txn, ks)
		if !ok {
			continue
		}
		// Append encodes the record into the log's segment buffer at once,
		// so the staged value can be passed through without a copy.
		rec := wal.Record{Txn: txn.ID, Part: uint64(pt.ID), Key: []byte(ks)}
		if v.Deleted {
			rec.Type = wal.RecPrepDel
		} else {
			rec.Type = wal.RecPrepDML
			rec.After = v.Val
		}
		pt.deps.Log.Append(rec)
	}
}

// Commit installs txn's staged MVCC writes into the trees at commitTS,
// logging each with before/after images. The caller is responsible for the
// commit record and log flush (so multi-partition transactions on one node
// share a single group-commit flush). Locking-mode transactions have
// nothing to install (writes applied eagerly); their pending list is empty.
// A power failure at any blocking point inside the install loop surfaces as
// ErrPartitionDown: the remaining writes died with the node's DRAM and are
// re-derived on restart (from the prepare-time log for decided distributed
// branches, or rolled back for everything else).
func (pt *Partition) Commit(p *sim.Proc, txn *cc.Txn, commitTS cc.Timestamp) error {
	if err := pt.down(); err != nil {
		return err
	}
	keys := pt.pending[txn.ID]
	delete(pt.pending, txn.ID)
	for _, ks := range keys {
		if err := pt.down(); err != nil { // node power-failed mid-install
			return err
		}
		key := []byte(ks)
		tr, _, err := pt.writeTree(p, key)
		if err != nil {
			return err
		}
		old, err := readLeaf(p, tr, key)
		if err != nil {
			return err
		}
		// Install first, release the write intent after: while the tree
		// install blocks on I/O, readers whose snapshot covers commitTS are
		// served the committed value through the version store's
		// committed-writer path instead of the stale leaf.
		v := pt.Store.BeginCommitKey(txn, ks, commitTS)
		rec := pt.logRecord(txn, key, old, v)
		lsn := pt.deps.Log.Append(rec)
		if _, err := pt.treePut(p, key, EncodeValue(v), lsn); err != nil {
			if derr := pt.down(); derr != nil {
				return derr // the install blocked across the power failure
			}
			return err
		}
		pt.Store.FinishCommitKey(txn, ks, old, commitTS)
		if v.Deleted {
			pt.tombs[ks] = struct{}{}
		}
	}
	pt.stats.Commits++
	return nil
}

// Abort discards txn's staged writes (MVCC) and runs undo (locking mode).
// Aborting against a power-failed partition is a no-op: the staged state is
// already gone.
func (pt *Partition) Abort(p *sim.Proc, txn *cc.Txn) {
	if pt.failed {
		return
	}
	for _, ks := range pt.pending[txn.ID] {
		pt.Store.AbortKey(txn, ks)
	}
	delete(pt.pending, txn.ID)
	pt.stats.Aborts++
}

// logRecord builds the WAL record for installing v over old. The log
// encodes on Append, so the key is borrowed, never retained.
func (pt *Partition) logRecord(txn *cc.Txn, key []byte, old *cc.Version, v cc.Version) wal.Record {
	rec := wal.Record{Txn: txn.ID, Part: uint64(pt.ID), Key: key}
	switch {
	case old == nil:
		rec.Type = wal.RecInsert
	case v.Deleted:
		rec.Type = wal.RecDelete
	default:
		rec.Type = wal.RecUpdate
	}
	if old != nil {
		rec.Before = EncodeValue(*old)
	}
	rec.After = EncodeValue(v) // tombstones are installed as values
	return rec
}

// ErrSplitRaced reports that a segment split lost a race with a concurrent
// structural change; callers should re-route and retry.
var ErrSplitRaced = errors.New("table: segment split raced with a concurrent change")

// treePut writes an encoded value, splitting the target mini-partition and
// retrying when its segment fills up (physiological growth path). Split
// races with concurrent writers are retried with fresh routing, and a put
// that parked behind a concurrent split re-homes its record: the split may
// have narrowed the target mini-partition below the key while the put
// waited for the tree's writer lock, in which case the record would land in
// a tree whose range no longer covers it — invisible to every read, which
// routes by handle ranges.
func (pt *Partition) treePut(p *sim.Proc, key, val []byte, lsn uint64) (bool, error) {
	for attempt := 0; ; attempt++ {
		tr, _, err := pt.writeTree(p, key)
		if err != nil {
			return false, err
		}
		replaced, err := tr.Put(p, key, val, lsn)
		if err == btree.ErrSegmentFull {
			if pt.Scheme != Physiological || attempt >= 8 {
				return false, err
			}
			h, rerr := pt.routeWrite(p, key)
			if rerr != nil {
				return false, rerr
			}
			if serr := pt.SplitSegment(p, h); serr != nil && serr != ErrSplitRaced {
				return false, serr
			}
			continue
		}
		if err != nil {
			return false, err
		}
		if pt.Scheme != Physiological {
			return replaced, nil
		}
		// No blocking call separates Put returning from this ownership
		// check, so the answer is stable: either the record is in the tree
		// reads route to, or a split stranded it and it must move.
		if h := pt.SegmentContaining(key); h != nil && h.Tree == tr {
			return replaced, nil
		}
		if _, derr := tr.Delete(p, key, lsn); derr != nil {
			return false, derr
		}
	}
}

// treeDelete removes key from the tree that currently owns it, re-issuing
// the delete if a concurrent split moved the record to a new mini-partition
// while the call was parked (the mirror of treePut's re-homing).
func (pt *Partition) treeDelete(p *sim.Proc, key []byte, lsn uint64) (bool, error) {
	for {
		tr, _, err := pt.writeTree(p, key)
		if err != nil {
			return false, err
		}
		existed, err := tr.Delete(p, key, lsn)
		if err != nil {
			return false, err
		}
		if pt.Scheme != Physiological {
			return existed, nil
		}
		if h := pt.SegmentContaining(key); h == nil || h.Tree == tr {
			return existed, nil
		}
	}
}

// SplitSegment splits mini-partition h at its median key: the upper half of
// its records is bulk-moved into a fresh segment. This is the paper's
// partition split, triggered when a segment overflows or when a hot
// mini-partition must be divided before migration.
func (pt *Partition) SplitSegment(p *sim.Proc, h *SegHandle) error {
	return pt.splitSeg(p, h, nil)
}

// SegmentContaining returns the live mini-partition covering key, or nil.
func (pt *Partition) SegmentContaining(key []byte) *SegHandle {
	for _, h := range pt.segs {
		if h.Contains(key) {
			return h
		}
	}
	return nil
}

// SplitSegmentAt divides mini-partition h at exactly key: records >= key
// move to a fresh segment covering [key, h.High). Used when a migration
// boundary falls inside a segment.
func (pt *Partition) SplitSegmentAt(p *sim.Proc, h *SegHandle, key []byte) error {
	if pt.Scheme != Physiological {
		return fmt.Errorf("table: segment split on %v partition", pt.Scheme)
	}
	return pt.splitSeg(p, h, key)
}

// splitSeg performs the split; a nil key means "at the median". All
// decisions happen under the old tree's writer lock so no record can slip
// into the moved range mid-split and no concurrent split can invalidate the
// chosen boundary.
func (pt *Partition) splitSeg(p *sim.Proc, h *SegHandle, key []byte) error {
	// Hold the old tree's writer lock for the whole surgery.
	return h.Tree.Exclusive(p, func() error {
		if key == nil {
			// Find the median under the lock.
			total := 0
			if err := h.Tree.Scan(p, nil, nil, func(_, _ []byte) bool { total++; return true }); err != nil {
				return err
			}
			if total < 2 {
				return ErrSplitRaced // someone already moved the records out
			}
			idx := 0
			if err := h.Tree.Scan(p, nil, nil, func(k, _ []byte) bool {
				if idx >= total/2 {
					key = bytes.Clone(k)
					return false
				}
				idx++
				return true
			}); err != nil {
				return err
			}
		}
		if bytes.Compare(key, h.Low) <= 0 || (h.High != nil && bytes.Compare(key, h.High) >= 0) {
			return ErrSplitRaced // the handle's range changed underneath us
		}
		type pair struct{ k, v []byte }
		var upper []pair
		if err := h.Tree.Scan(p, key, nil, func(k, v []byte) bool {
			upper = append(upper, pair{bytes.Clone(k), bytes.Clone(v)})
			return true
		}); err != nil {
			return err
		}
		midKey := bytes.Clone(key)

		seg, err := pt.deps.Factory.NewSegment(p)
		if err != nil {
			return err
		}
		nh := &SegHandle{
			Seg:   seg,
			Pager: pt.deps.Factory.Pager(seg),
			Low:   midKey,
			High:  h.High,
		}
		nh.Tree = btree.New(nh.Pager, 0, func(no storage.PageNo) { seg.TreeRoot = no })
		i := 0
		if err := nh.Tree.BulkLoad(p, 0.9, func() ([]byte, []byte, bool) {
			if i >= len(upper) {
				return nil, nil, false
			}
			pr := upper[i]
			i++
			return pr.k, pr.v, true
		}); err != nil {
			return err
		}
		nh.Tree.Serialize(pt.deps.Env)
		// Remove the moved records from the old tree, then shrink its range.
		for _, pr := range upper {
			if _, err := h.Tree.DeleteLocked(p, pr.k, 0); err != nil {
				return err
			}
		}
		h.High = midKey
		h.Seg.HighKey = midKey
		seg.LowKey, seg.HighKey = nh.Low, nh.High
		pt.addSegmentSorted(nh)
		return nil
	})
}

// Vacuum physically removes tombstones whose deletion is older than the
// MVCC watermark (no snapshot can see the record anymore) and garbage
// collects version chains. It returns the number of tombstones removed.
// Vacuum removal is not logged: redoing an old delete just reinstalls a
// tombstone, which a later vacuum removes again.
func (pt *Partition) Vacuum(p *sim.Proc, watermark cc.Timestamp) (int, error) {
	if err := pt.down(); err != nil {
		return 0, err
	}
	removed := 0
	// Tombstones are visited in key order: each removal performs simulated
	// tree I/O, so map-iteration order would leak into the virtual clock and
	// break run-to-run determinism.
	ordered := make([]string, 0, len(pt.tombs))
	for ks := range pt.tombs {
		ordered = append(ordered, ks)
	}
	sort.Strings(ordered)
	for _, ks := range ordered {
		if err := pt.down(); err != nil { // node crashed mid-vacuum
			return removed, err
		}
		key := []byte(ks)
		tr, _, err := pt.writeTree(p, key)
		if err != nil {
			// Key range moved away; its tombstone moved with it.
			delete(pt.tombs, ks)
			continue
		}
		leaf, err := readLeaf(p, tr, key)
		if err != nil {
			return removed, err
		}
		if leaf == nil {
			delete(pt.tombs, ks)
			continue
		}
		if !leaf.Deleted || leaf.TS >= watermark {
			continue
		}
		if _, err := pt.treeDelete(p, key, 0); err != nil {
			return removed, err
		}
		delete(pt.tombs, ks)
		removed++
	}
	pt.Store.GC(watermark)
	return removed, nil
}

// RecoveryPut implements wal.Target: raw install bypassing CC.
func (pt *Partition) RecoveryPut(p *sim.Proc, key, val []byte) error {
	_, err := pt.treePut(p, key, val, 0)
	return err
}

// RecoveryDelete implements wal.Target.
func (pt *Partition) RecoveryDelete(p *sim.Proc, key []byte) error {
	_, err := pt.treeDelete(p, key, 0)
	return err
}

// RecoveryInstall implements wal.Target: roll forward a prepare-time redo
// image at the coordinator-decided commit timestamp. Deletes install as
// tombstones (registered for vacuum), exactly as a live commit would.
func (pt *Partition) RecoveryInstall(p *sim.Proc, key, val []byte, ts cc.Timestamp, deleted bool) error {
	v := cc.Version{TS: ts, Deleted: deleted, Val: bytes.Clone(val)}
	if _, err := pt.treePut(p, key, EncodeValue(v), 0); err != nil {
		return err
	}
	if deleted {
		pt.tombs[string(key)] = struct{}{}
	}
	return nil
}

// DetachSegment removes mini-partition h from live service, keeping it as a
// ghost readable by snapshots begun at or before moveTS (the paper's "old
// copies of the records still remain until the movement is finished").
func (pt *Partition) DetachSegment(h *SegHandle, moveTS cc.Timestamp) error {
	if pt.Scheme != Physiological {
		return fmt.Errorf("table: DetachSegment on %v partition", pt.Scheme)
	}
	for i, s := range pt.segs {
		if s == h {
			pt.segs = append(pt.segs[:i], pt.segs[i+1:]...)
			pt.ghosts = append(pt.ghosts, ghost{handle: h, moveTS: moveTS})
			return nil
		}
	}
	return fmt.Errorf("table: segment %d not part of partition %d", h.Seg.ID, pt.ID)
}

// AdoptSegment incorporates a shipped mini-partition into this partition:
// "as soon as segments arrive at the new node, they are incorporated in its
// index and the new node overtakes query processing" (Sect. 5.2). The
// partition's own bounds widen if needed.
func (pt *Partition) AdoptSegment(seg *storage.Segment) (*SegHandle, error) {
	if pt.Scheme != Physiological {
		return nil, fmt.Errorf("table: AdoptSegment on %v partition", pt.Scheme)
	}
	h := &SegHandle{
		Seg:   seg,
		Pager: pt.deps.Factory.Pager(seg),
		Low:   seg.LowKey,
		High:  seg.HighKey,
	}
	h.Tree = btree.New(h.Pager, seg.TreeRoot, func(no storage.PageNo) { seg.TreeRoot = no })
	h.Tree.Serialize(pt.deps.Env)
	pt.addSegmentSorted(h)
	if len(pt.Low) == 0 || bytes.Compare(h.Low, pt.Low) < 0 {
		pt.Low = h.Low
	}
	if pt.High != nil && (h.High == nil || bytes.Compare(h.High, pt.High) > 0) {
		pt.High = h.High
	}
	return h, nil
}

// DropGhost releases a ghost segment once no old reader needs it.
func (pt *Partition) DropGhost(p *sim.Proc, segID storage.SegID) error {
	for i, g := range pt.ghosts {
		if g.handle.Seg.ID == segID {
			pt.ghosts = append(pt.ghosts[:i], pt.ghosts[i+1:]...)
			pt.deps.Factory.DropSegment(p, segID)
			return nil
		}
	}
	return fmt.Errorf("table: no ghost segment %d in partition %d", segID, pt.ID)
}

// Ghosts returns the number of ghost segments awaiting reader drain.
func (pt *Partition) Ghosts() int { return len(pt.ghosts) }

// SegIDs lists every segment the partition references — live handles and
// ghosts — so a dead partition's storage can be released when a restarted
// node swaps in its recovered replacement.
func (pt *Partition) SegIDs() []storage.SegID {
	out := make([]storage.SegID, 0, len(pt.segs)+len(pt.ghosts))
	for _, h := range pt.segs {
		out = append(out, h.Seg.ID)
	}
	for _, g := range pt.ghosts {
		out = append(out, g.handle.Seg.ID)
	}
	return out
}

// CommitTxn drives the full commit of txn across the given co-located
// partitions: install writes, write the commit record, group-commit flush,
// release locks. It is the single-node transaction epilogue; the cluster's
// two-phase commit calls the same partition primitives per branch.
func CommitTxn(p *sim.Proc, txn *cc.Txn, parts ...*Partition) error {
	if !txn.Active() {
		return cc.ErrTxnNotActive
	}
	deps := &parts[0].deps
	commitTS := deps.Oracle.CommitTS(txn)
	for _, pt := range parts {
		if err := pt.Commit(p, txn, commitTS); err != nil {
			return err
		}
	}
	lsn := deps.Log.Append(wal.Record{Txn: txn.ID, Type: wal.RecCommit})
	deps.Log.Flush(p, lsn)
	// The forced commit record seals the fate: settle so new snapshots may
	// cover the commit timestamp.
	deps.Oracle.SettleCommit(txn)
	deps.Locks.ReleaseAll(txn)
	txn.DropUndo()
	return nil
}

// AbortTxn rolls txn back across the given co-located partitions.
func AbortTxn(p *sim.Proc, txn *cc.Txn, parts ...*Partition) {
	if txn.State == cc.TxnAborted {
		return
	}
	deps := &parts[0].deps
	for _, pt := range parts {
		pt.Abort(p, txn)
	}
	txn.RunUndo(p) // locking-mode in-place writes
	deps.Log.Append(wal.Record{Txn: txn.ID, Type: wal.RecAbort})
	deps.Oracle.Abort(txn)
	deps.Locks.ReleaseAll(txn)
}

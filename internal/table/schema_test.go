package table

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"wattdb/internal/cc"
)

func testSchema() *Schema {
	return &Schema{
		ID:   1,
		Name: "account",
		Columns: []Column{
			{"id", ColInt64},
			{"branch", ColInt64},
			{"name", ColString},
			{"balance", ColFloat64},
		},
		KeyCols: 2,
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Schema{Name: "x", Columns: []Column{{"a", ColInt64}}, KeyCols: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestRowRoundTrip(t *testing.T) {
	s := testSchema()
	f := func(id, branch int64, name string, balance float64) bool {
		if math.IsNaN(balance) {
			return true
		}
		row := Row{id, branch, name, balance}
		enc, err := s.EncodeRow(row)
		if err != nil {
			return false
		}
		dec, err := s.DecodeRow(enc)
		if err != nil {
			return false
		}
		return dec[0] == id && dec[1] == branch && dec[2] == name && dec[3] == balance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRowTypeMismatch(t *testing.T) {
	s := testSchema()
	if _, err := s.EncodeRow(Row{"not-an-int", int64(1), "x", 1.0}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := s.EncodeRow(Row{int64(1)}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestKeyOrdering(t *testing.T) {
	s := testSchema()
	k1, _ := s.Key(Row{int64(1), int64(5), "a", 0.0})
	k2, _ := s.Key(Row{int64(1), int64(9), "b", 0.0})
	k3, _ := s.Key(Row{int64(2), int64(0), "c", 0.0})
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("composite keys not ordered")
	}
	prefix, _ := s.EncodeKeyPrefix(int64(1))
	if !bytes.HasPrefix(k1, prefix) || !bytes.HasPrefix(k2, prefix) || bytes.HasPrefix(k3, prefix) {
		t.Fatal("prefix encoding mismatch")
	}
}

func TestDecodeRowErrors(t *testing.T) {
	s := testSchema()
	if _, err := s.DecodeRow([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated row accepted")
	}
	row := Row{int64(1), int64(2), "abc", 3.5}
	enc, _ := s.EncodeRow(row)
	if _, err := s.DecodeRow(append(enc, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestValueEncoding(t *testing.T) {
	f := func(ts uint64, deleted bool, payload []byte) bool {
		v := cc.Version{TS: cc.Timestamp(ts), Deleted: deleted, Val: payload}
		dec, err := DecodeValue(EncodeValue(v))
		if err != nil {
			return false
		}
		return dec.TS == v.TS && dec.Deleted == deleted && bytes.Equal(dec.Val, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeValue([]byte{1}); err == nil {
		t.Fatal("short value accepted")
	}
}

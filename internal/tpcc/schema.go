// Package tpcc implements the paper's workload substrate: the TPC-C
// dataset and its five transactions, modified as Sect. 5.1 describes —
// every transaction executes in a single run without user interaction, and
// spec constraints irrelevant to partitioning-scheme comparison (wait
// times, 60-day space, response-time bounds) are dropped.
//
// Scale is configurable below the spec's cardinalities (the spec's
// 100 GB/SF-1000 dataset does not fit a simulation process); the shape of
// every access path is preserved.
package tpcc

import (
	"wattdb/internal/table"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrders    = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// Config scales the dataset. Spec values: 10 districts, 3000 customers per
// district, 100 000 items, 3000 initial orders per district. Defaults trim
// the per-warehouse weight by ~10x while keeping all ratios.
type Config struct {
	Warehouses           int
	DistrictsPerW        int
	CustomersPerDistrict int
	Items                int
	InitialOrdersPerDist int
	// Seed drives all data and workload randomness.
	Seed int64
}

// DefaultConfig returns a scaled-down configuration suitable for tests and
// simulation benches.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:           warehouses,
		DistrictsPerW:        10,
		CustomersPerDistrict: 120,
		Items:                500,
		InitialOrdersPerDist: 120,
		Seed:                 42,
	}
}

func col(name string, t table.ColType) table.Column { return table.Column{Name: name, Type: t} }

// Schemas returns all nine TPC-C table schemas keyed for warehouse-range
// partitioning (w_id leads every primary key except ITEM's).
func Schemas() map[string]*table.Schema {
	i64, str, f64 := table.ColInt64, table.ColString, table.ColFloat64
	return map[string]*table.Schema{
		TWarehouse: {ID: 1, Name: TWarehouse, KeyCols: 1, Columns: []table.Column{
			col("w_id", i64), col("w_name", str), col("w_tax", f64), col("w_ytd", f64),
		}},
		TDistrict: {ID: 2, Name: TDistrict, KeyCols: 2, Columns: []table.Column{
			col("d_w_id", i64), col("d_id", i64), col("d_name", str),
			col("d_tax", f64), col("d_ytd", f64), col("d_next_o_id", i64),
		}},
		TCustomer: {ID: 3, Name: TCustomer, KeyCols: 3, Columns: []table.Column{
			col("c_w_id", i64), col("c_d_id", i64), col("c_id", i64),
			col("c_last", str), col("c_credit", str), col("c_balance", f64),
			col("c_ytd_payment", f64), col("c_payment_cnt", i64),
			col("c_delivery_cnt", i64), col("c_data", str),
		}},
		THistory: {ID: 4, Name: THistory, KeyCols: 4, Columns: []table.Column{
			col("h_w_id", i64), col("h_d_id", i64), col("h_c_id", i64), col("h_seq", i64),
			col("h_amount", f64), col("h_data", str),
		}},
		TNewOrder: {ID: 5, Name: TNewOrder, KeyCols: 3, Columns: []table.Column{
			col("no_w_id", i64), col("no_d_id", i64), col("no_o_id", i64),
		}},
		TOrders: {ID: 6, Name: TOrders, KeyCols: 3, Columns: []table.Column{
			col("o_w_id", i64), col("o_d_id", i64), col("o_id", i64),
			col("o_c_id", i64), col("o_entry_d", i64), col("o_carrier_id", i64),
			col("o_ol_cnt", i64),
		}},
		TOrderLine: {ID: 7, Name: TOrderLine, KeyCols: 4, Columns: []table.Column{
			col("ol_w_id", i64), col("ol_d_id", i64), col("ol_o_id", i64), col("ol_number", i64),
			col("ol_i_id", i64), col("ol_supply_w_id", i64), col("ol_quantity", i64),
			col("ol_amount", f64), col("ol_dist_info", str),
		}},
		TItem: {ID: 8, Name: TItem, KeyCols: 1, Columns: []table.Column{
			col("i_id", i64), col("i_name", str), col("i_price", f64), col("i_data", str),
		}},
		TStock: {ID: 9, Name: TStock, KeyCols: 2, Columns: []table.Column{
			col("s_w_id", i64), col("s_i_id", i64), col("s_quantity", i64),
			col("s_ytd", f64), col("s_order_cnt", i64), col("s_remote_cnt", i64),
			col("s_dist_info", str),
		}},
	}
}

// PartitionedTables lists the tables partitioned by warehouse ranges
// (everything except the replicated ITEM).
func PartitionedTables() []string {
	return []string{TWarehouse, TDistrict, TCustomer, THistory, TNewOrder, TOrders, TOrderLine, TStock}
}

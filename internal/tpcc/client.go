package tpcc

import (
	"fmt"
	"math/rand"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
)

// Result describes one finished transaction attempt.
type Result struct {
	Type      TxnType
	Start     time.Duration
	Latency   time.Duration
	Committed bool
	Breakdown *sim.Breakdown
}

// Client submits transactions at a fixed interval, as Sect. 5.1 describes:
// "each client submits a randomly selected query at specified intervals; if
// the query is answered, the next query is delayed until the subsequent
// interval" — the experiment measures adaptivity under a bounded offered
// load, not peak throughput.
type Client struct {
	ID       int
	Master   *cluster.Master
	Dep      *Deployment
	Interval time.Duration
	Mode     cc.Mode
	// Retries bounds re-execution after conflicts/timeouts.
	Retries int
	// OnResult receives every finished attempt.
	OnResult func(Result)
	// CollectBreakdown attaches a Fig. 7 time decomposition to each txn.
	CollectBreakdown bool

	rng  *rand.Rand
	stop bool
}

// NewClient builds a client with its own deterministic random stream.
func NewClient(id int, m *cluster.Master, dep *Deployment, interval time.Duration, mode cc.Mode) *Client {
	return &Client{
		ID:       id,
		Master:   m,
		Dep:      dep,
		Interval: interval,
		Mode:     mode,
		Retries:  3,
		rng:      rand.New(rand.NewSource(dep.Cfg.Seed*7919 + int64(id))),
	}
}

// Stop makes the client exit after its current transaction.
func (c *Client) Stop() { c.stop = true }

// Start spawns the client's process.
func (c *Client) Start() {
	c.Master.Cluster().Env.Spawn(fmt.Sprintf("tpcc-client-%d", c.ID), c.Run)
}

// Run is the client loop; use Start to spawn it as its own process.
func (c *Client) Run(p *sim.Proc) {
	if c.Interval > 0 {
		// Desynchronise client phases so offered load is smooth.
		p.Sleep(time.Duration(c.rng.Int63n(int64(c.Interval))))
	}
	for !c.stop {
		start := p.Now()
		c.RunOne(p)
		elapsed := p.Now() - start
		if think := c.Interval - elapsed; think > 0 {
			p.Sleep(think)
		}
	}
}

// RunOne executes a single randomly selected transaction (with retries) and
// reports it. It returns whether the transaction finally committed.
func (c *Client) RunOne(p *sim.Proc) bool {
	typ := PickTxn(c.rng)
	w := 1 + c.rng.Intn(c.Dep.Cfg.Warehouses)
	return c.RunTyped(p, typ, w)
}

// RunTyped executes one transaction of the given type for home warehouse w.
func (c *Client) RunTyped(p *sim.Proc, typ TxnType, w int) bool {
	start := p.Now()
	home := c.homeNode(w)
	var bd *sim.Breakdown
	committed := false
	for attempt := 0; attempt <= c.Retries && !committed; attempt++ {
		sess := c.Master.Begin(p, c.Mode, home)
		if c.CollectBreakdown {
			bd = &sim.Breakdown{}
			p.Breakdown = bd
			sess.Txn.Breakdown = bd
		}
		err := c.Dep.Exec(p, sess, typ, w, c.rng)
		if err == nil {
			err = sess.Commit(p)
		}
		if err != nil {
			sess.Abort(p)
			switch err {
			case cc.ErrWriteConflict, cc.ErrLockTimeout:
				p.Sleep(time.Duration(1+c.rng.Intn(5)) * time.Millisecond)
				continue
			default:
				break
			}
		} else {
			committed = true
		}
		break
	}
	if c.CollectBreakdown {
		p.Breakdown = nil
	}
	if c.OnResult != nil {
		c.OnResult(Result{
			Type:      typ,
			Start:     start,
			Latency:   p.Now() - start,
			Committed: committed,
			Breakdown: bd,
		})
	}
	return committed
}

// homeNode resolves the node owning warehouse w (via the master's partition
// table for the WAREHOUSE table).
func (c *Client) homeNode(w int) *cluster.DataNode {
	tm, err := c.Master.Table(TWarehouse)
	if err != nil {
		return c.Master.Node
	}
	key := keycodec.Int64Key(int64(w))
	e, err := tm.Route(key)
	if err != nil {
		return c.Master.Node
	}
	return e.Owner
}

package tpcc

import (
	"fmt"
	"math/rand"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

var lastNames = [...]string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName builds the spec's syllable last name for a number in [0, 999].
func LastName(num int) string {
	return lastNames[num/100%10] + lastNames[num/10%10] + lastNames[num%10]
}

// NURand is the spec's non-uniform random distribution.
func NURand(rng *rand.Rand, a, x, y int) int {
	c := a / 2
	return (((rng.Intn(a+1) | (rng.Intn(y-x+1) + x)) + c) % (y - x + 1)) + x
}

func randData(rng *rand.Rand, min, max int) string {
	n := min + rng.Intn(max-min+1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// Deploy creates all nine TPC-C tables on the master: the eight
// warehouse-keyed tables range-partitioned per spec, ITEM replicated to the
// given nodes. ranges assigns contiguous warehouse intervals to owners:
// ranges[i] owns warehouses [cuts[i-1]+1 .. cuts[i]].
type Deployment struct {
	Cfg     Config
	Schemas map[string]*table.Schema
	Master  *cluster.Master

	// RecordEffects makes Exec summarize each transaction's state changes
	// (keyed by transaction ID) so a workload oracle can model exactly what
	// an acknowledged commit installed; pop summaries with TakeEffect.
	RecordEffects bool
	effects       map[cc.TxnID]*Effect

	// scratch pools per-transaction decode/encode workspaces (txnScratch).
	scratch []*txnScratch
}

// WarehouseRange assigns warehouses [FromW, ToW] (inclusive) to Owner.
type WarehouseRange struct {
	FromW, ToW int
	Owner      *cluster.DataNode
}

// Deploy registers the TPC-C tables with the given warehouse assignment and
// partitioning scheme; ITEM is replicated to every distinct owner (plus
// extras, e.g. nodes that will join later).
func Deploy(m *cluster.Master, cfg Config, scheme table.Scheme, ranges []WarehouseRange, itemNodes []*cluster.DataNode) (*Deployment, error) {
	schemas := Schemas()
	for _, name := range PartitionedTables() {
		s := schemas[name]
		var specs []cluster.RangeSpec
		for i, r := range ranges {
			var low, high []byte
			if i > 0 {
				low = keycodec.Int64Key(int64(r.FromW))
			}
			if i < len(ranges)-1 {
				high = keycodec.Int64Key(int64(r.ToW + 1))
			}
			specs = append(specs, cluster.RangeSpec{Low: low, High: high, Owner: r.Owner})
		}
		if _, err := m.CreateTable(s, scheme, specs); err != nil {
			return nil, err
		}
	}
	if _, err := m.CreateReplicatedTable(schemas[TItem], itemNodes); err != nil {
		return nil, err
	}
	return &Deployment{Cfg: cfg, Schemas: schemas, Master: m}, nil
}

// arenaStream encodes a generated table into one shared arena — keys and
// payloads back-to-back, offsets recorded instead of slices — so a whole
// load stream costs a few amortised allocations instead of two per record.
// It returns a restartable stream factory; the arena stops growing before
// any stream is drained, so the handed-out sub-slices stay valid across the
// bulk loader's one-record look-ahead.
func arenaStream(s *table.Schema, gen func(emit func(table.Row) error) error) (func() func() ([]byte, []byte, bool), error) {
	type span struct{ k1, v1 int } // key = arena[prev.v1:k1], payload = arena[k1:v1]
	var arena []byte
	var rows []span
	err := gen(func(r table.Row) error {
		var err error
		arena, err = s.AppendKeyPrefix(arena, r[:s.KeyCols]...)
		if err != nil {
			return err
		}
		k1 := len(arena)
		arena, err = s.AppendEncodedRow(arena, r)
		if err != nil {
			return err
		}
		rows = append(rows, span{k1, len(arena)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return func() func() ([]byte, []byte, bool) {
		i := 0
		return func() ([]byte, []byte, bool) {
			if i >= len(rows) {
				return nil, nil, false
			}
			k0 := 0
			if i > 0 {
				k0 = rows[i-1].v1
			}
			sp := rows[i]
			i++
			return arena[k0:sp.k1], arena[sp.k1:sp.v1], true
		}
	}, nil
}

// Load generates and bulk-loads the full dataset (no simulation time).
func (d *Deployment) Load(p *sim.Proc) error {
	cfg := d.Cfg
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Generation is cheap; each table is buffered whole (as an encoded
	// arena) to keep the stream strictly sorted — generators already emit
	// in key order.
	load := func(name string, gen func(emit func(table.Row) error) error) error {
		stream, err := arenaStream(d.Schemas[name], gen)
		if err != nil {
			return err
		}
		return d.Master.BulkLoad(p, name, stream())
	}

	W, D, C := cfg.Warehouses, cfg.DistrictsPerW, cfg.CustomersPerDistrict

	if err := load(TWarehouse, func(emit func(table.Row) error) error {
		for w := 1; w <= W; w++ {
			if err := emit(table.Row{int64(w), fmt.Sprintf("WH-%04d", w), rng.Float64() * 0.2, 300000.0}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := load(TDistrict, func(emit func(table.Row) error) error {
		for w := 1; w <= W; w++ {
			for dd := 1; dd <= D; dd++ {
				next := int64(cfg.InitialOrdersPerDist + 1)
				if err := emit(table.Row{int64(w), int64(dd), fmt.Sprintf("D-%d-%d", w, dd),
					rng.Float64() * 0.2, 30000.0, next}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := load(TCustomer, func(emit func(table.Row) error) error {
		for w := 1; w <= W; w++ {
			for dd := 1; dd <= D; dd++ {
				for c := 1; c <= C; c++ {
					credit := "GC"
					if rng.Intn(10) == 0 {
						credit = "BC"
					}
					if err := emit(table.Row{int64(w), int64(dd), int64(c),
						LastName(c % 1000), credit, -10.0, 10.0, int64(1), int64(0),
						randData(rng, 50, 150)}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := load(THistory, func(emit func(table.Row) error) error {
		for w := 1; w <= W; w++ {
			for dd := 1; dd <= D; dd++ {
				for c := 1; c <= C; c++ {
					if err := emit(table.Row{int64(w), int64(dd), int64(c), int64(1),
						10.0, randData(rng, 12, 24)}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	O := cfg.InitialOrdersPerDist
	newOrderStart := O - O/3 + 1 // last third of orders are undelivered

	if err := load(TNewOrder, func(emit func(table.Row) error) error {
		for w := 1; w <= W; w++ {
			for dd := 1; dd <= D; dd++ {
				for o := newOrderStart; o <= O; o++ {
					if err := emit(table.Row{int64(w), int64(dd), int64(o)}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Orders and order lines share per-order randomness; regenerate with a
	// dedicated deterministic source so both tables agree.
	orderRng := func() *rand.Rand { return rand.New(rand.NewSource(cfg.Seed + 7)) }

	if err := load(TOrders, func(emit func(table.Row) error) error {
		r := orderRng()
		for w := 1; w <= W; w++ {
			for dd := 1; dd <= D; dd++ {
				for o := 1; o <= O; o++ {
					olCnt := 5 + r.Intn(11)
					carrier := int64(0)
					if o < newOrderStart {
						carrier = int64(1 + r.Intn(10))
					}
					if err := emit(table.Row{int64(w), int64(dd), int64(o),
						int64(1 + r.Intn(C)), int64(o), carrier, int64(olCnt)}); err != nil {
						return err
					}
					for ol := 1; ol <= olCnt; ol++ {
						r.Intn(cfg.Items) // keep the two passes in lockstep
						r.Intn(10)
					}
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := load(TOrderLine, func(emit func(table.Row) error) error {
		r := orderRng()
		for w := 1; w <= W; w++ {
			for dd := 1; dd <= D; dd++ {
				for o := 1; o <= O; o++ {
					olCnt := 5 + r.Intn(11)
					if o < newOrderStart {
						r.Intn(10)
					} else {
						// carrier draw consumed only for delivered orders
					}
					_ = r.Intn(C)
					// Note: draws must mirror the TOrders pass exactly.
					for ol := 1; ol <= olCnt; ol++ {
						item := int64(1 + r.Intn(cfg.Items))
						qty := int64(1 + r.Intn(10))
						if err := emit(table.Row{int64(w), int64(dd), int64(o), int64(ol),
							item, int64(w), qty, float64(qty) * 5.0, randData(rng, 24, 24)}); err != nil {
							return err
						}
					}
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := load(TStock, func(emit func(table.Row) error) error {
		for w := 1; w <= W; w++ {
			for i := 1; i <= cfg.Items; i++ {
				if err := emit(table.Row{int64(w), int64(i), int64(10 + rng.Intn(91)),
					0.0, int64(0), int64(0), randData(rng, 24, 48)}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// ITEM: replicated, restartable stream. The arena is encoded once and
	// every replica drains its own pass over it.
	itemStream, err := arenaStream(d.Schemas[TItem], func(emit func(table.Row) error) error {
		r := rand.New(rand.NewSource(cfg.Seed + 13))
		for i := 1; i <= cfg.Items; i++ {
			row := table.Row{int64(i), fmt.Sprintf("item-%05d", i), 1 + r.Float64()*99, randData(r, 26, 50)}
			if err := emit(row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return d.Master.BulkLoadReplicated(p, TItem, itemStream)
}

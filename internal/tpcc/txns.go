package tpcc

import (
	"fmt"
	"math/rand"

	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType int

const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	numTxnTypes
)

// String returns the transaction's display name.
func (t TxnType) String() string {
	return [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}[t]
}

// PickTxn draws a transaction type with the standard mix (45/43/4/4/4).
func PickTxn(rng *rand.Rand) TxnType {
	r := rng.Intn(100)
	switch {
	case r < 45:
		return TxnNewOrder
	case r < 88:
		return TxnPayment
	case r < 92:
		return TxnOrderStatus
	case r < 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// Exec runs one transaction of the given type against sess, for home
// warehouse w. The caller owns commit/abort (Exec leaves the session open on
// success and returns any execution error as-is for retry logic).
func (d *Deployment) Exec(p *sim.Proc, sess *cluster.Session, typ TxnType, w int, rng *rand.Rand) error {
	switch typ {
	case TxnNewOrder:
		return d.NewOrder(p, sess, w, rng)
	case TxnPayment:
		return d.Payment(p, sess, w, rng)
	case TxnOrderStatus:
		return d.OrderStatus(p, sess, w, rng)
	case TxnDelivery:
		return d.Delivery(p, sess, w, rng)
	default:
		return d.StockLevel(p, sess, w, rng)
	}
}

func (d *Deployment) get(p *sim.Proc, s *cluster.Session, tbl string, keyVals ...any) (table.Row, bool, error) {
	schema := d.Schemas[tbl]
	key, err := schema.EncodeKeyPrefix(keyVals...)
	if err != nil {
		return nil, false, err
	}
	raw, ok, err := s.Get(p, tbl, key)
	if err != nil || !ok {
		return nil, ok, err
	}
	row, err := schema.DecodeRow(raw)
	return row, true, err
}

func (d *Deployment) put(p *sim.Proc, s *cluster.Session, tbl string, row table.Row) error {
	schema := d.Schemas[tbl]
	key, err := schema.Key(row)
	if err != nil {
		return err
	}
	payload, err := schema.EncodeRow(row)
	if err != nil {
		return err
	}
	return s.Put(p, tbl, key, payload)
}

// NewOrder is the spec's order-entry transaction: reads warehouse, district
// (bumping D_NEXT_O_ID), customer and items; inserts ORDERS, NEW_ORDER, and
// one ORDER_LINE per item; updates each STOCK row (1% of lines supply from
// a remote warehouse, making the transaction distributed).
func (d *Deployment) NewOrder(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	cfg := d.Cfg
	dd := 1 + rng.Intn(cfg.DistrictsPerW)
	c := NURand(rng, 1023, 1, cfg.CustomersPerDistrict)
	olCnt := 5 + rng.Intn(11)

	if _, ok, err := d.get(p, s, TWarehouse, int64(w)); err != nil || !ok {
		return orErr(err, "warehouse %d missing", w)
	}
	dist, ok, err := d.get(p, s, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district %d/%d missing", w, dd)
	}
	if _, ok, err = d.get(p, s, TCustomer, int64(w), int64(dd), int64(c)); err != nil || !ok {
		return orErr(err, "customer %d/%d/%d missing", w, dd, c)
	}

	oID := dist[5].(int64)
	dist[5] = oID + 1
	if err := d.put(p, s, TDistrict, dist); err != nil {
		return err
	}
	if err := d.put(p, s, TOrders, table.Row{int64(w), int64(dd), oID,
		int64(c), oID, int64(0), int64(olCnt)}); err != nil {
		return err
	}
	if err := d.put(p, s, TNewOrder, table.Row{int64(w), int64(dd), oID}); err != nil {
		return err
	}
	total := 0.0
	for ol := 1; ol <= olCnt; ol++ {
		item := NURand(rng, 8191, 1, cfg.Items)
		supplyW := w
		if cfg.Warehouses > 1 && rng.Intn(100) == 0 {
			for supplyW == w {
				supplyW = 1 + rng.Intn(cfg.Warehouses)
			}
		}
		itemRow, ok, err := d.get(p, s, TItem, int64(item))
		if err != nil || !ok {
			return orErr(err, "item %d missing", item)
		}
		stock, ok, err := d.get(p, s, TStock, int64(supplyW), int64(item))
		if err != nil || !ok {
			return orErr(err, "stock %d/%d missing", supplyW, item)
		}
		qty := int64(1 + rng.Intn(10))
		sq := stock[2].(int64)
		if sq >= qty+10 {
			stock[2] = sq - qty
		} else {
			stock[2] = sq - qty + 91
		}
		stock[3] = stock[3].(float64) + float64(qty)
		stock[4] = stock[4].(int64) + 1
		if supplyW != w {
			stock[5] = stock[5].(int64) + 1
		}
		if err := d.put(p, s, TStock, stock); err != nil {
			return err
		}
		amount := float64(qty) * itemRow[2].(float64)
		total += amount
		if err := d.put(p, s, TOrderLine, table.Row{int64(w), int64(dd), oID, int64(ol),
			int64(item), int64(supplyW), qty, amount, "dist-info-xxxxxxxxxxxxxx"}); err != nil {
			return err
		}
	}
	_ = total
	return nil
}

// Payment updates warehouse and district YTD, the customer's balance, and
// appends a history row. 15% of payments are for a customer of a remote
// warehouse, per spec.
func (d *Deployment) Payment(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	cfg := d.Cfg
	dd := 1 + rng.Intn(cfg.DistrictsPerW)
	cw, cd := w, dd
	if cfg.Warehouses > 1 && rng.Intn(100) < 15 {
		for cw == w {
			cw = 1 + rng.Intn(cfg.Warehouses)
		}
		cd = 1 + rng.Intn(cfg.DistrictsPerW)
	}
	c := NURand(rng, 1023, 1, cfg.CustomersPerDistrict)
	amount := 1 + rng.Float64()*4999

	wh, ok, err := d.get(p, s, TWarehouse, int64(w))
	if err != nil || !ok {
		return orErr(err, "warehouse %d missing", w)
	}
	wh[3] = wh[3].(float64) + amount
	if err := d.put(p, s, TWarehouse, wh); err != nil {
		return err
	}
	dist, ok, err := d.get(p, s, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district missing")
	}
	dist[4] = dist[4].(float64) + amount
	if err := d.put(p, s, TDistrict, dist); err != nil {
		return err
	}
	cust, ok, err := d.get(p, s, TCustomer, int64(cw), int64(cd), int64(c))
	if err != nil || !ok {
		return orErr(err, "customer missing")
	}
	cust[5] = cust[5].(float64) - amount
	cust[6] = cust[6].(float64) + amount
	cust[7] = cust[7].(int64) + 1
	if err := d.put(p, s, TCustomer, cust); err != nil {
		return err
	}
	seq := int64(s.Txn.ID) // unique per transaction
	return d.put(p, s, THistory, table.Row{int64(cw), int64(cd), int64(c), seq,
		amount, "payment-history-data"})
}

// OrderStatus reads a customer's most recent order and its lines
// (read-only).
func (d *Deployment) OrderStatus(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	cfg := d.Cfg
	dd := 1 + rng.Intn(cfg.DistrictsPerW)
	c := NURand(rng, 1023, 1, cfg.CustomersPerDistrict)
	if _, ok, err := d.get(p, s, TCustomer, int64(w), int64(dd), int64(c)); err != nil || !ok {
		return orErr(err, "customer missing")
	}
	// Latest order of the customer: scan the district's recent orders.
	dist, ok, err := d.get(p, s, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district missing")
	}
	nextO := dist[5].(int64)
	fromO := nextO - 40
	if fromO < 1 {
		fromO = 1
	}
	oSchema := d.Schemas[TOrders]
	lo, _ := oSchema.EncodeKeyPrefix(int64(w), int64(dd), fromO)
	hi, _ := oSchema.EncodeKeyPrefix(int64(w), int64(dd), nextO)
	var lastOrder int64 = -1
	var olCnt int64
	err = s.Scan(p, TOrders, lo, hi, func(_, payload []byte) bool {
		row, derr := oSchema.DecodeRow(payload)
		if derr != nil {
			return false
		}
		if row[3].(int64) == int64(c) {
			lastOrder = row[2].(int64)
			olCnt = row[6].(int64)
		}
		return true
	})
	if err != nil {
		return err
	}
	if lastOrder < 0 {
		return nil // customer has no recent order: valid outcome
	}
	olSchema := d.Schemas[TOrderLine]
	llo, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), lastOrder)
	lhi, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), lastOrder+1)
	seen := int64(0)
	if err := s.Scan(p, TOrderLine, llo, lhi, func(_, _ []byte) bool {
		seen++
		return true
	}); err != nil {
		return err
	}
	_ = olCnt
	_ = seen
	return nil
}

// Delivery processes the oldest undelivered order of every district:
// removes its NEW_ORDER entry, stamps the carrier, sums the line amounts
// and credits the customer.
func (d *Deployment) Delivery(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	carrier := int64(1 + rng.Intn(10))
	noSchema := d.Schemas[TNewOrder]
	oSchema := d.Schemas[TOrders]
	olSchema := d.Schemas[TOrderLine]
	for dd := 1; dd <= d.Cfg.DistrictsPerW; dd++ {
		lo, _ := noSchema.EncodeKeyPrefix(int64(w), int64(dd))
		hi, _ := noSchema.EncodeKeyPrefix(int64(w), int64(dd+1))
		var oldest int64 = -1
		if err := s.Scan(p, TNewOrder, lo, hi, func(_, payload []byte) bool {
			row, derr := noSchema.DecodeRow(payload)
			if derr != nil {
				return false
			}
			oldest = row[2].(int64)
			return false // first = oldest
		}); err != nil {
			return err
		}
		if oldest < 0 {
			continue
		}
		noKey, _ := noSchema.EncodeKeyPrefix(int64(w), int64(dd), oldest)
		if err := s.Delete(p, TNewOrder, noKey); err != nil {
			return err
		}
		order, ok, err := d.get(p, s, TOrders, int64(w), int64(dd), oldest)
		if err != nil || !ok {
			return orErr(err, "order %d/%d/%d missing", w, dd, oldest)
		}
		order[5] = carrier
		if err := d.put(p, s, TOrders, order); err != nil {
			return err
		}
		total := 0.0
		llo, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), oldest)
		lhi, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), oldest+1)
		if err := s.Scan(p, TOrderLine, llo, lhi, func(_, payload []byte) bool {
			row, derr := olSchema.DecodeRow(payload)
			if derr != nil {
				return false
			}
			total += row[7].(float64)
			return true
		}); err != nil {
			return err
		}
		cust, ok, err := d.get(p, s, TCustomer, int64(w), int64(dd), order[3].(int64))
		if err != nil || !ok {
			return orErr(err, "customer missing")
		}
		cust[5] = cust[5].(float64) + total
		cust[8] = cust[8].(int64) + 1
		if err := d.put(p, s, TCustomer, cust); err != nil {
			return err
		}
		_ = oSchema
	}
	return nil
}

// StockLevel counts recently sold items whose stock fell below a threshold
// (read-only, scan-heavy).
func (d *Deployment) StockLevel(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	dd := 1 + rng.Intn(d.Cfg.DistrictsPerW)
	threshold := int64(10 + rng.Intn(11))
	dist, ok, err := d.get(p, s, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district missing")
	}
	nextO := dist[5].(int64)
	fromO := nextO - 20
	if fromO < 1 {
		fromO = 1
	}
	olSchema := d.Schemas[TOrderLine]
	lo, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), fromO)
	hi, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), nextO)
	seen := map[int64]bool{}
	var items []int64 // kept in scan order for determinism
	if err := s.Scan(p, TOrderLine, lo, hi, func(_, payload []byte) bool {
		row, derr := olSchema.DecodeRow(payload)
		if derr != nil {
			return false
		}
		if id := row[4].(int64); !seen[id] {
			seen[id] = true
			items = append(items, id)
		}
		return true
	}); err != nil {
		return err
	}
	low := 0
	for _, item := range items {
		stock, ok, err := d.get(p, s, TStock, int64(w), item)
		if err != nil {
			return err
		}
		if ok && stock[2].(int64) < threshold {
			low++
		}
	}
	_ = low
	return nil
}

func orErr(err error, format string, args ...any) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("tpcc: "+format, args...)
}

var _ = keycodec.Int64Key // keep import for key helpers used above

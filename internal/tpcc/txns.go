package tpcc

import (
	"fmt"
	"math/rand"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// TxnType enumerates the five TPC-C transactions.
type TxnType int

const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	numTxnTypes
)

// String returns the transaction's display name.
func (t TxnType) String() string {
	return [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}[t]
}

// PickTxn draws a transaction type with the standard mix (45/43/4/4/4).
func PickTxn(rng *rand.Rand) TxnType {
	r := rng.Intn(100)
	switch {
	case r < 45:
		return TxnNewOrder
	case r < 88:
		return TxnPayment
	case r < 92:
		return TxnOrderStatus
	case r < 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// Effect summarizes the state changes of one executed transaction, recorded
// when Deployment.RecordEffects is set. A workload oracle applies the effect
// to its model the instant the commit is acknowledged — the summary carries
// everything the model needs (order ids read under the transaction's own
// snapshot, random amounts, chosen items), none of which it could re-derive.
type Effect struct {
	Type TxnType
	W, D int64

	// NewOrder: the order id taken from D_NEXT_O_ID and its lines.
	OID   int64
	OlCnt int64
	Lines []EffectLine

	// Payment: the amount credited to the home warehouse/district YTD.
	Amount float64

	// Delivery: the orders removed from NEW_ORDER, one per district served.
	Delivered []DeliveredOrder
}

// EffectLine is one NewOrder line's stock impact.
type EffectLine struct {
	Item    int64
	SupplyW int64
	Qty     int64
}

// DeliveredOrder names one order a Delivery transaction processed.
type DeliveredOrder struct {
	D, OID int64
}

// recordEffect files eff under the session's transaction (last writer wins:
// a retried transaction overwrites its previous attempt's summary).
func (d *Deployment) recordEffect(s *cluster.Session, eff *Effect) {
	if !d.RecordEffects {
		return
	}
	if d.effects == nil {
		d.effects = make(map[cc.TxnID]*Effect)
	}
	d.effects[s.Txn.ID] = eff
}

// TakeEffect pops the recorded effect of a transaction (nil if none — a
// read-only or unrecorded transaction). Call it for aborted transactions
// too, so the table does not accumulate dead entries.
func (d *Deployment) TakeEffect(id cc.TxnID) *Effect {
	eff := d.effects[id]
	delete(d.effects, id)
	return eff
}

// txnScratch is the per-transaction decode/encode workspace: one reusable
// one-row batch per table plus key and payload encode buffers. Scratches
// are pooled on the Deployment (the simulation kernel is cooperative, so
// the pool needs no locking); a warm transaction mix decodes and re-encodes
// rows without allocating per record.
type txnScratch struct {
	rows map[string]*table.Batch
	key  []byte
	buf  []byte
}

// batch returns the scratch's reusable batch for schema, reset to empty.
func (sc *txnScratch) batch(s *table.Schema) *table.Batch {
	b := sc.rows[s.Name]
	if b == nil {
		b = table.NewBatch(s)
		sc.rows[s.Name] = b
	} else {
		b.Reset()
	}
	return b
}

func (d *Deployment) getScratch() *txnScratch {
	if n := len(d.scratch); n > 0 {
		sc := d.scratch[n-1]
		d.scratch = d.scratch[:n-1]
		return sc
	}
	return &txnScratch{rows: make(map[string]*table.Batch)}
}

func (d *Deployment) putScratch(sc *txnScratch) { d.scratch = append(d.scratch, sc) }

// Exec runs one transaction of the given type against sess, for home
// warehouse w. The caller owns commit/abort (Exec leaves the session open on
// success and returns any execution error as-is for retry logic).
func (d *Deployment) Exec(p *sim.Proc, sess *cluster.Session, typ TxnType, w int, rng *rand.Rand) error {
	switch typ {
	case TxnNewOrder:
		return d.NewOrder(p, sess, w, rng)
	case TxnPayment:
		return d.Payment(p, sess, w, rng)
	case TxnOrderStatus:
		return d.OrderStatus(p, sess, w, rng)
	case TxnDelivery:
		return d.Delivery(p, sess, w, rng)
	default:
		return d.StockLevel(p, sess, w, rng)
	}
}

// get reads tbl[keyVals...] into the scratch's reusable batch for that
// table (row 0 of the returned batch; valid until the table is read again
// through the same scratch).
func (d *Deployment) get(p *sim.Proc, s *cluster.Session, sc *txnScratch, tbl string, keyVals ...any) (*table.Batch, bool, error) {
	schema := d.Schemas[tbl]
	var err error
	sc.key, err = schema.AppendKeyPrefix(sc.key[:0], keyVals...)
	if err != nil {
		return nil, false, err
	}
	raw, ok, err := s.Get(p, tbl, sc.key)
	if err != nil || !ok {
		return nil, ok, err
	}
	b := sc.batch(schema)
	if err := schema.AppendDecoded(b, raw); err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// putRow writes back row 0 of b, re-encoding key and payload into the
// scratch's buffers (the partition layer copies what it stages).
func (d *Deployment) putRow(p *sim.Proc, s *cluster.Session, sc *txnScratch, tbl string, b *table.Batch) error {
	schema := d.Schemas[tbl]
	var err error
	sc.key, err = schema.AppendKey(sc.key[:0], b, 0)
	if err != nil {
		return err
	}
	sc.buf, err = schema.AppendEncoded(sc.buf[:0], b, 0)
	if err != nil {
		return err
	}
	return s.Put(p, tbl, sc.key, sc.buf)
}

// put inserts a freshly built row, encoding through the scratch buffers.
func (d *Deployment) put(p *sim.Proc, s *cluster.Session, sc *txnScratch, tbl string, row table.Row) error {
	schema := d.Schemas[tbl]
	var err error
	sc.key, err = schema.AppendKeyPrefix(sc.key[:0], row[:schema.KeyCols]...)
	if err != nil {
		return err
	}
	sc.buf, err = schema.AppendEncodedRow(sc.buf[:0], row)
	if err != nil {
		return err
	}
	return s.Put(p, tbl, sc.key, sc.buf)
}

// NewOrder is the spec's order-entry transaction: reads warehouse, district
// (bumping D_NEXT_O_ID), customer and items; inserts ORDERS, NEW_ORDER, and
// one ORDER_LINE per item; updates each STOCK row (1% of lines supply from
// a remote warehouse, making the transaction distributed).
func (d *Deployment) NewOrder(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	sc := d.getScratch()
	defer d.putScratch(sc)
	cfg := d.Cfg
	dd := 1 + rng.Intn(cfg.DistrictsPerW)
	c := NURand(rng, 1023, 1, cfg.CustomersPerDistrict)
	olCnt := 5 + rng.Intn(11)

	if _, ok, err := d.get(p, s, sc, TWarehouse, int64(w)); err != nil || !ok {
		return orErr(err, "warehouse %d missing", w)
	}
	dist, ok, err := d.get(p, s, sc, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district %d/%d missing", w, dd)
	}
	if _, ok, err = d.get(p, s, sc, TCustomer, int64(w), int64(dd), int64(c)); err != nil || !ok {
		return orErr(err, "customer %d/%d/%d missing", w, dd, c)
	}

	oID := dist.Int(5, 0)
	dist.SetInt(5, 0, oID+1)
	if err := d.putRow(p, s, sc, TDistrict, dist); err != nil {
		return err
	}
	eff := &Effect{Type: TxnNewOrder, W: int64(w), D: int64(dd), OID: oID, OlCnt: int64(olCnt)}
	if err := d.put(p, s, sc, TOrders, table.Row{int64(w), int64(dd), oID,
		int64(c), oID, int64(0), int64(olCnt)}); err != nil {
		return err
	}
	if err := d.put(p, s, sc, TNewOrder, table.Row{int64(w), int64(dd), oID}); err != nil {
		return err
	}
	total := 0.0
	for ol := 1; ol <= olCnt; ol++ {
		item := NURand(rng, 8191, 1, cfg.Items)
		supplyW := w
		if cfg.Warehouses > 1 && rng.Intn(100) == 0 {
			for supplyW == w {
				supplyW = 1 + rng.Intn(cfg.Warehouses)
			}
		}
		itemRow, ok, err := d.get(p, s, sc, TItem, int64(item))
		if err != nil || !ok {
			return orErr(err, "item %d missing", item)
		}
		price := itemRow.Float(2, 0)
		stock, ok, err := d.get(p, s, sc, TStock, int64(supplyW), int64(item))
		if err != nil || !ok {
			return orErr(err, "stock %d/%d missing", supplyW, item)
		}
		qty := int64(1 + rng.Intn(10))
		sq := stock.Int(2, 0)
		if sq >= qty+10 {
			stock.SetInt(2, 0, sq-qty)
		} else {
			stock.SetInt(2, 0, sq-qty+91)
		}
		stock.SetFloat(3, 0, stock.Float(3, 0)+float64(qty))
		stock.SetInt(4, 0, stock.Int(4, 0)+1)
		if supplyW != w {
			stock.SetInt(5, 0, stock.Int(5, 0)+1)
		}
		if err := d.putRow(p, s, sc, TStock, stock); err != nil {
			return err
		}
		amount := float64(qty) * price
		total += amount
		if err := d.put(p, s, sc, TOrderLine, table.Row{int64(w), int64(dd), oID, int64(ol),
			int64(item), int64(supplyW), qty, amount, "dist-info-xxxxxxxxxxxxxx"}); err != nil {
			return err
		}
		if d.RecordEffects {
			eff.Lines = append(eff.Lines, EffectLine{Item: int64(item), SupplyW: int64(supplyW), Qty: qty})
		}
	}
	_ = total
	d.recordEffect(s, eff)
	return nil
}

// Payment updates warehouse and district YTD, the customer's balance, and
// appends a history row. 15% of payments are for a customer of a remote
// warehouse, per spec.
func (d *Deployment) Payment(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	sc := d.getScratch()
	defer d.putScratch(sc)
	cfg := d.Cfg
	dd := 1 + rng.Intn(cfg.DistrictsPerW)
	cw, cd := w, dd
	if cfg.Warehouses > 1 && rng.Intn(100) < 15 {
		for cw == w {
			cw = 1 + rng.Intn(cfg.Warehouses)
		}
		cd = 1 + rng.Intn(cfg.DistrictsPerW)
	}
	c := NURand(rng, 1023, 1, cfg.CustomersPerDistrict)
	amount := 1 + rng.Float64()*4999

	wh, ok, err := d.get(p, s, sc, TWarehouse, int64(w))
	if err != nil || !ok {
		return orErr(err, "warehouse %d missing", w)
	}
	wh.SetFloat(3, 0, wh.Float(3, 0)+amount)
	if err := d.putRow(p, s, sc, TWarehouse, wh); err != nil {
		return err
	}
	dist, ok, err := d.get(p, s, sc, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district missing")
	}
	dist.SetFloat(4, 0, dist.Float(4, 0)+amount)
	if err := d.putRow(p, s, sc, TDistrict, dist); err != nil {
		return err
	}
	cust, ok, err := d.get(p, s, sc, TCustomer, int64(cw), int64(cd), int64(c))
	if err != nil || !ok {
		return orErr(err, "customer missing")
	}
	cust.SetFloat(5, 0, cust.Float(5, 0)-amount)
	cust.SetFloat(6, 0, cust.Float(6, 0)+amount)
	cust.SetInt(7, 0, cust.Int(7, 0)+1)
	if err := d.putRow(p, s, sc, TCustomer, cust); err != nil {
		return err
	}
	seq := int64(s.Txn.ID) // unique per transaction
	if err := d.put(p, s, sc, THistory, table.Row{int64(cw), int64(cd), int64(c), seq,
		amount, "payment-history-data"}); err != nil {
		return err
	}
	d.recordEffect(s, &Effect{Type: TxnPayment, W: int64(w), D: int64(dd), Amount: amount})
	return nil
}

// OrderStatus reads a customer's most recent order and its lines
// (read-only).
func (d *Deployment) OrderStatus(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	sc := d.getScratch()
	defer d.putScratch(sc)
	cfg := d.Cfg
	dd := 1 + rng.Intn(cfg.DistrictsPerW)
	c := NURand(rng, 1023, 1, cfg.CustomersPerDistrict)
	if _, ok, err := d.get(p, s, sc, TCustomer, int64(w), int64(dd), int64(c)); err != nil || !ok {
		return orErr(err, "customer missing")
	}
	// Latest order of the customer: scan the district's recent orders.
	dist, ok, err := d.get(p, s, sc, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district missing")
	}
	nextO := dist.Int(5, 0)
	fromO := nextO - 40
	if fromO < 1 {
		fromO = 1
	}
	oSchema := d.Schemas[TOrders]
	lo, _ := oSchema.EncodeKeyPrefix(int64(w), int64(dd), fromO)
	hi, _ := oSchema.EncodeKeyPrefix(int64(w), int64(dd), nextO)
	var lastOrder int64 = -1
	var olCnt int64
	ob := sc.batch(oSchema)
	err = s.Scan(p, TOrders, lo, hi, func(_, payload []byte) bool {
		ob.Reset()
		if oSchema.AppendDecoded(ob, payload) != nil {
			return false
		}
		if ob.Int(3, 0) == int64(c) {
			lastOrder = ob.Int(2, 0)
			olCnt = ob.Int(6, 0)
		}
		return true
	})
	if err != nil {
		return err
	}
	if lastOrder < 0 {
		return nil // customer has no recent order: valid outcome
	}
	olSchema := d.Schemas[TOrderLine]
	llo, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), lastOrder)
	lhi, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), lastOrder+1)
	seen := int64(0)
	if err := s.Scan(p, TOrderLine, llo, lhi, func(_, _ []byte) bool {
		seen++
		return true
	}); err != nil {
		return err
	}
	_ = olCnt
	_ = seen
	return nil
}

// Delivery processes the oldest undelivered order of every district:
// removes its NEW_ORDER entry, stamps the carrier, sums the line amounts
// and credits the customer.
func (d *Deployment) Delivery(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	sc := d.getScratch()
	defer d.putScratch(sc)
	carrier := int64(1 + rng.Intn(10))
	noSchema := d.Schemas[TNewOrder]
	olSchema := d.Schemas[TOrderLine]
	eff := &Effect{Type: TxnDelivery, W: int64(w)}
	for dd := 1; dd <= d.Cfg.DistrictsPerW; dd++ {
		lo, _ := noSchema.EncodeKeyPrefix2(int64(w), int64(dd))
		hi, _ := noSchema.EncodeKeyPrefix2(int64(w), int64(dd+1))
		var oldest int64 = -1
		nb := sc.batch(noSchema)
		if err := s.Scan(p, TNewOrder, lo, hi, func(_, payload []byte) bool {
			nb.Reset()
			if noSchema.AppendDecoded(nb, payload) != nil {
				return false
			}
			oldest = nb.Int(2, 0)
			return false // first = oldest
		}); err != nil {
			return err
		}
		if oldest < 0 {
			continue
		}
		noKey, err := noSchema.AppendKeyPrefix(sc.key[:0], int64(w), int64(dd), oldest)
		if err != nil {
			return err
		}
		sc.key = noKey
		if err := s.Delete(p, TNewOrder, sc.key); err != nil {
			return err
		}
		order, ok, err := d.get(p, s, sc, TOrders, int64(w), int64(dd), oldest)
		if err != nil || !ok {
			return orErr(err, "order %d/%d/%d missing", w, dd, oldest)
		}
		order.SetInt(5, 0, carrier)
		if err := d.putRow(p, s, sc, TOrders, order); err != nil {
			return err
		}
		custID := order.Int(3, 0)
		total := 0.0
		llo, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), oldest)
		lhi, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), oldest+1)
		ob := sc.batch(olSchema)
		if err := s.Scan(p, TOrderLine, llo, lhi, func(_, payload []byte) bool {
			ob.Reset()
			if olSchema.AppendDecoded(ob, payload) != nil {
				return false
			}
			total += ob.Float(7, 0)
			return true
		}); err != nil {
			return err
		}
		cust, ok, err := d.get(p, s, sc, TCustomer, int64(w), int64(dd), custID)
		if err != nil || !ok {
			return orErr(err, "customer missing")
		}
		cust.SetFloat(5, 0, cust.Float(5, 0)+total)
		cust.SetInt(8, 0, cust.Int(8, 0)+1)
		if err := d.putRow(p, s, sc, TCustomer, cust); err != nil {
			return err
		}
		if d.RecordEffects {
			eff.Delivered = append(eff.Delivered, DeliveredOrder{D: int64(dd), OID: oldest})
		}
	}
	d.recordEffect(s, eff)
	return nil
}

// StockLevel counts recently sold items whose stock fell below a threshold
// (read-only, scan-heavy).
func (d *Deployment) StockLevel(p *sim.Proc, s *cluster.Session, w int, rng *rand.Rand) error {
	sc := d.getScratch()
	defer d.putScratch(sc)
	dd := 1 + rng.Intn(d.Cfg.DistrictsPerW)
	threshold := int64(10 + rng.Intn(11))
	dist, ok, err := d.get(p, s, sc, TDistrict, int64(w), int64(dd))
	if err != nil || !ok {
		return orErr(err, "district missing")
	}
	nextO := dist.Int(5, 0)
	fromO := nextO - 20
	if fromO < 1 {
		fromO = 1
	}
	olSchema := d.Schemas[TOrderLine]
	lo, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), fromO)
	hi, _ := olSchema.EncodeKeyPrefix(int64(w), int64(dd), nextO)
	seen := map[int64]bool{}
	var items []int64 // kept in scan order for determinism
	ob := sc.batch(olSchema)
	if err := s.Scan(p, TOrderLine, lo, hi, func(_, payload []byte) bool {
		ob.Reset()
		if olSchema.AppendDecoded(ob, payload) != nil {
			return false
		}
		if id := ob.Int(4, 0); !seen[id] {
			seen[id] = true
			items = append(items, id)
		}
		return true
	}); err != nil {
		return err
	}
	low := 0
	for _, item := range items {
		stock, ok, err := d.get(p, s, sc, TStock, int64(w), item)
		if err != nil {
			return err
		}
		if ok && stock.Int(2, 0) < threshold {
			low++
		}
	}
	_ = low
	return nil
}

func orErr(err error, format string, args ...any) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("tpcc: "+format, args...)
}

package tpcc

import (
	"math/rand"
	"testing"
	"time"

	"wattdb/internal/cc"
	"wattdb/internal/cluster"
	"wattdb/internal/keycodec"
	"wattdb/internal/sim"
	"wattdb/internal/table"
)

// deploy builds a small 2-node TPC-C deployment with half the warehouses on
// each node.
func deploy(t *testing.T, scheme table.Scheme, warehouses int) (*sim.Env, *cluster.Cluster, *Deployment) {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	c := cluster.New(env, cfg)
	for _, n := range c.Nodes[1:] {
		n.HW.ForceActive()
	}
	tcfg := DefaultConfig(warehouses)
	tcfg.CustomersPerDistrict = 30
	tcfg.Items = 100
	tcfg.InitialOrdersPerDist = 30
	tcfg.DistrictsPerW = 4
	mid := warehouses / 2
	dep, err := Deploy(c.Master, tcfg, scheme, []WarehouseRange{
		{FromW: 1, ToW: mid, Owner: c.Nodes[0]},
		{FromW: mid + 1, ToW: warehouses, Owner: c.Nodes[1]},
	}, c.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("load", func(p *sim.Proc) {
		if err := dep.Load(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return env, c, dep
}

func TestLoadCardinalities(t *testing.T) {
	env, c, dep := deploy(t, table.Physiological, 2)
	defer env.Close()
	cfg := dep.Cfg
	env.Spawn("check", func(p *sim.Proc) {
		checks := []struct {
			tbl  string
			want int
		}{
			{TWarehouse, cfg.Warehouses},
			{TDistrict, cfg.Warehouses * cfg.DistrictsPerW},
			{TCustomer, cfg.Warehouses * cfg.DistrictsPerW * cfg.CustomersPerDistrict},
			{TNewOrder, cfg.Warehouses * cfg.DistrictsPerW * (cfg.InitialOrdersPerDist / 3)},
			{TOrders, cfg.Warehouses * cfg.DistrictsPerW * cfg.InitialOrdersPerDist},
			{TStock, cfg.Warehouses * cfg.Items},
		}
		for _, ch := range checks {
			n, err := c.Master.RecordCount(p, ch.tbl)
			if err != nil {
				t.Errorf("%s: %v", ch.tbl, err)
				continue
			}
			if n != ch.want {
				t.Errorf("%s: %d records, want %d", ch.tbl, n, ch.want)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestOrderLineMatchesOrders verifies the two generator passes agree: every
// order's ol_cnt equals its number of order lines.
func TestOrderLineMatchesOrders(t *testing.T) {
	env, c, dep := deploy(t, table.Physiological, 2)
	defer env.Close()
	env.Spawn("check", func(p *sim.Proc) {
		s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
		defer s.Abort(p)
		oSchema := dep.Schemas[TOrders]
		olSchema := dep.Schemas[TOrderLine]
		// Count order lines per (w,d,o).
		lines := map[[3]int64]int64{}
		if err := s.Scan(p, TOrderLine, nil, nil, func(_, payload []byte) bool {
			row, err := olSchema.DecodeRow(payload)
			if err != nil {
				t.Error(err)
				return false
			}
			lines[[3]int64{row[0].(int64), row[1].(int64), row[2].(int64)}]++
			return true
		}); err != nil {
			t.Error(err)
			return
		}
		orders := 0
		if err := s.Scan(p, TOrders, nil, nil, func(_, payload []byte) bool {
			row, err := oSchema.DecodeRow(payload)
			if err != nil {
				t.Error(err)
				return false
			}
			key := [3]int64{row[0].(int64), row[1].(int64), row[2].(int64)}
			if lines[key] != row[6].(int64) {
				t.Errorf("order %v: ol_cnt=%d but %d lines", key, row[6], lines[key])
				return false
			}
			orders++
			return true
		}); err != nil {
			t.Error(err)
		}
		if orders == 0 {
			t.Error("no orders scanned")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAllTransactionTypesCommit(t *testing.T) {
	env, c, dep := deploy(t, table.Physiological, 2)
	defer env.Close()
	client := NewClient(1, c.Master, dep, 0, cc.SnapshotIsolation)
	results := map[TxnType]int{}
	client.OnResult = func(r Result) {
		if r.Committed {
			results[r.Type]++
		}
	}
	env.Spawn("txns", func(p *sim.Proc) {
		for typ := TxnType(0); typ < numTxnTypes; typ++ {
			for i := 0; i < 5; i++ {
				if !client.RunTyped(p, typ, 1+i%2) {
					t.Errorf("%v attempt %d did not commit", typ, i)
				}
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for typ := TxnType(0); typ < numTxnTypes; typ++ {
		if results[typ] != 5 {
			t.Errorf("%v committed %d/5", typ, results[typ])
		}
	}
}

func TestNewOrderAdvancesDistrictCounter(t *testing.T) {
	env, c, dep := deploy(t, table.Physiological, 2)
	defer env.Close()
	env.Spawn("check", func(p *sim.Proc) {
		readNext := func() int64 {
			s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
			defer s.Abort(p)
			key, _ := dep.Schemas[TDistrict].EncodeKeyPrefix2(int64(1), int64(1))
			raw, ok, err := s.Get(p, TDistrict, key)
			if err != nil || !ok {
				t.Fatalf("district read: %v %v", ok, err)
			}
			row, _ := dep.Schemas[TDistrict].DecodeRow(raw)
			return row[5].(int64)
		}
		before := readNext()
		rng := rand.New(rand.NewSource(1))
		committedOnD1 := 0
		for committedOnD1 == 0 {
			s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
			// Force district 1 by retrying until the rng picks it.
			save := *rng
			dd := 1 + rng.Intn(dep.Cfg.DistrictsPerW)
			*rng = save
			if dd != 1 {
				rng.Intn(dep.Cfg.DistrictsPerW) // burn and move on
				s.Abort(p)
				continue
			}
			if err := dep.NewOrder(p, s, 1, rng); err != nil {
				s.Abort(p)
				t.Fatal(err)
			}
			if err := s.Commit(p); err != nil {
				t.Fatal(err)
			}
			committedOnD1++
		}
		if after := readNext(); after != before+1 {
			t.Fatalf("next_o_id %d -> %d, want +1", before, after)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	env, c, dep := deploy(t, table.Physiological, 2)
	defer env.Close()
	env.Spawn("check", func(p *sim.Proc) {
		before, _ := c.Master.RecordCount(p, TNewOrder)
		s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
		rng := rand.New(rand.NewSource(2))
		if err := dep.Delivery(p, s, 1, rng); err != nil {
			s.Abort(p)
			t.Fatal(err)
		}
		if err := s.Commit(p); err != nil {
			t.Fatal(err)
		}
		after, _ := c.Master.RecordCount(p, TNewOrder)
		if after != before-dep.Cfg.DistrictsPerW {
			t.Fatalf("new_order count %d -> %d, want -%d", before, after, dep.Cfg.DistrictsPerW)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadDuringMigration drives a full TPC-C mix while half the
// warehouses migrate, and verifies the warehouse YTD invariant: the sum of
// district YTDs per warehouse equals the warehouse YTD (all Payment updates
// survived the move).
func TestWorkloadDuringMigration(t *testing.T) {
	for _, scheme := range []table.Scheme{table.Logical, table.Physiological} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			env, c, dep := deploy(t, scheme, 4)
			defer env.Close()
			var clients []*Client
			committed := 0
			for i := 0; i < 6; i++ {
				cl := NewClient(i, c.Master, dep, 20*time.Millisecond, cc.SnapshotIsolation)
				cl.OnResult = func(r Result) {
					if r.Committed {
						committed++
					}
				}
				clients = append(clients, cl)
				cl.Start()
			}
			env.Spawn("migrate", func(p *sim.Proc) {
				p.Sleep(200 * time.Millisecond)
				// Move warehouses 1..2 (node 0) to node 2.
				lo := keycodec.Int64Key(1)
				hi := keycodec.Int64Key(3)
				for _, tbl := range PartitionedTables() {
					if err := c.Master.MigrateRange(p, tbl, lo, hi, c.Nodes[2]); err != nil {
						t.Errorf("migrate %s: %v", tbl, err)
					}
				}
				p.Sleep(500 * time.Millisecond)
				for _, cl := range clients {
					cl.Stop()
				}
			})
			if err := env.RunUntil(2 * time.Minute); err != nil {
				t.Fatal(err)
			}
			if committed < 20 {
				t.Fatalf("only %d transactions committed", committed)
			}
			env.Spawn("verify", func(p *sim.Proc) {
				s := c.Master.Begin(p, cc.SnapshotIsolation, c.Nodes[0])
				defer s.Abort(p)
				wSchema := dep.Schemas[TWarehouse]
				dSchema := dep.Schemas[TDistrict]
				distYTD := map[int64]float64{}
				if err := s.Scan(p, TDistrict, nil, nil, func(_, payload []byte) bool {
					row, _ := dSchema.DecodeRow(payload)
					distYTD[row[0].(int64)] += row[4].(float64)
					return true
				}); err != nil {
					t.Error(err)
					return
				}
				warehouses := 0
				if err := s.Scan(p, TWarehouse, nil, nil, func(_, payload []byte) bool {
					row, _ := wSchema.DecodeRow(payload)
					w := row[0].(int64)
					// w_ytd starts at 300000, districts at 30000 each: the
					// deltas since load must match.
					wDelta := row[3].(float64) - 300000.0
					dDelta := distYTD[w] - 30000.0*float64(dep.Cfg.DistrictsPerW)
					if diff := wDelta - dDelta; diff > 0.01 || diff < -0.01 {
						t.Errorf("warehouse %d YTD drift: w=%.2f d=%.2f", w, wDelta, dDelta)
					}
					warehouses++
					return true
				}); err != nil {
					t.Error(err)
				}
				if warehouses != dep.Cfg.Warehouses {
					t.Errorf("saw %d warehouses", warehouses)
				}
			})
			if err := env.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

GO ?= go

# Micro-benchmarks compared by bench-baseline / bench-compare.
BENCH_PATTERN  ?= BenchmarkSimWakeup|BenchmarkPoolPinHit|BenchmarkCursorScan|BenchmarkScanPipeline|BenchmarkTableScanBatch|BenchmarkChangedSince|BenchmarkGroupCommit|BenchmarkEncodeKeyPrefix|BenchmarkHashJoin|BenchmarkMergeJoin|BenchmarkExchangeParallelScan
BENCH_COUNT    ?= 10
BENCH_BASELINE ?= bench-baseline.txt
BENCH_NEW      ?= bench-new.txt

# Chaos harness: number of seeds swept by `make chaos` / `make chaos-tpcc`.
SEEDS ?= 25

.PHONY: all build test test-race vet chaos chaos-tpcc chaos-coord chaos-ship chaos-rto chaos-htap chaos-quick bench-quick bench-micro bench-analytics bench-baseline bench-compare check

all: check

## build: compile every package
build:
	$(GO) build ./...

## test: run the full unit-test suite
test:
	$(GO) test ./...

## test-race: the full suite under the race detector
test-race:
	$(GO) test -race ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## chaos: sweep the deterministic fault-injection harness over SEEDS seeds
## (schemes rotate per seed); any failing seed prints a one-line repro
chaos:
	$(GO) run ./cmd/wattdb-chaos -seeds $(SEEDS)

## chaos-tpcc: the same sweep over the TPC-C workload with the
## warehouse-invariant oracle (W_YTD/D_YTD, order atomicity, stock sums)
chaos-tpcc:
	$(GO) run ./cmd/wattdb-chaos -tpcc -seeds $(SEEDS)

## chaos-coord: coordinator-failover-heavy sweep — every plan already
## power-fails the leader once; this piles on extra random leader crashes so
## elections, lease handoffs, and in-doubt reconciliation dominate the run
chaos-coord:
	$(GO) run ./cmd/wattdb-chaos -seeds $(SEEDS) -coord 3
	$(GO) run ./cmd/wattdb-chaos -tpcc -seeds $(SEEDS) -coord 3

## chaos-ship: replication-heavy sweep — extra disk destructions and
## acked-frame bit rot per plan, so full rebuilds from the replica set and
## scrubber repairs dominate the run
chaos-ship:
	$(GO) run ./cmd/wattdb-chaos -seeds $(SEEDS) -disk 3
	$(GO) run ./cmd/wattdb-chaos -tpcc -seeds $(SEEDS) -disk 3

## chaos-rto: checkpoint-heavy sweep — extra mid-checkpoint power failures
## per plan, so fuzzy-checkpoint fallback and the bounded-replay oracle
## (restart work = delta since last checkpoint) dominate the run
chaos-rto:
	$(GO) run ./cmd/wattdb-chaos -seeds $(SEEDS) -ckpt 3
	$(GO) run ./cmd/wattdb-chaos -tpcc -seeds $(SEEDS) -ckpt 3

## chaos-htap: analytics-heavy sweep — extra concurrent HTAP readers run
## validated scan-aggregate snapshot queries (half with the follower-read
## offloading hint) while the full fault plan executes
chaos-htap:
	$(GO) run ./cmd/wattdb-chaos -seeds $(SEEDS) -htap 4
	$(GO) run ./cmd/wattdb-chaos -tpcc -seeds $(SEEDS) -htap 4

## chaos-quick: a short crash-anywhere sweep of both workloads, plus
## coordinator-crash-heavy, disk-loss-heavy, mid-checkpoint-crash, and
## HTAP-analytics bursts (CI gate)
chaos-quick:
	$(GO) run ./cmd/wattdb-chaos -seeds 6 -duration 25s
	$(GO) run ./cmd/wattdb-chaos -tpcc -seeds 3 -duration 20s
	$(GO) run ./cmd/wattdb-chaos -seeds 4 -duration 25s -coord 3
	$(GO) run ./cmd/wattdb-chaos -seeds 4 -duration 25s -disk 3
	$(GO) run ./cmd/wattdb-chaos -seeds 4 -duration 25s -ckpt 3
	$(GO) run ./cmd/wattdb-chaos -seeds 3 -duration 25s -htap 4
	$(GO) run ./cmd/wattdb-chaos -tpcc -seeds 2 -duration 20s -htap 4

## check: tier-1 verification in one command (build + vet + race-enabled
## tests + a short crash-anywhere chaos sweep of both workloads)
check: build vet test-race chaos-quick

## bench-quick: regenerate every paper figure once at CI scale
bench-quick:
	$(GO) test -bench=BenchmarkFig -benchtime=1x -run '^$$' .

## bench-micro: hot-path micro-benchmarks with allocation counts
bench-micro:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -run '^$$' .

## bench-analytics: the HTAP study (analytics placement vs OLTP
## interference) plus the analytical operator micro-benchmarks — joins must
## report 0 allocs/op and the exchange's sim-us/drain must shrink linearly
## with partitions
bench-analytics:
	$(GO) test ./internal/chbench/ -v
	$(GO) test -bench='BenchmarkFigHTAP' -benchtime=1x -run '^$$' -v .
	$(GO) test -bench='BenchmarkHashJoin|BenchmarkMergeJoin|BenchmarkExchangeParallelScan' -benchmem -run '^$$' .

## bench-baseline: record the micro-benchmark baseline bench-compare diffs
## against (run it on the old code before starting a change)
bench-baseline:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) -run '^$$' . | tee $(BENCH_BASELINE)

## bench-compare: re-run the micro-benchmarks with -count=$(BENCH_COUNT) and
## report old-vs-new via benchstat (install: go install
## golang.org/x/perf/cmd/benchstat@latest); without benchstat the raw runs
## are kept on disk for manual comparison
bench-compare:
	@test -f $(BENCH_BASELINE) || { \
		echo "no $(BENCH_BASELINE); run 'make bench-baseline' on the old code first"; exit 1; }
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) -run '^$$' . | tee $(BENCH_NEW)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASELINE) $(BENCH_NEW); \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest);"; \
		echo "raw runs kept in $(BENCH_BASELINE) and $(BENCH_NEW) for manual comparison"; \
	fi

GO ?= go

.PHONY: all build test vet bench-quick bench-micro check

all: check

## build: compile every package
build:
	$(GO) build ./...

## test: run the full unit-test suite (tier-1 verification, part 1)
test:
	$(GO) test ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## check: tier-1 verification in one command
check: build vet test

## bench-quick: regenerate every paper figure once at CI scale
bench-quick:
	$(GO) test -bench=BenchmarkFig -benchtime=1x -run '^$$' .

## bench-micro: hot-path micro-benchmarks with allocation counts
bench-micro:
	$(GO) test -bench='BenchmarkSimWakeup|BenchmarkPoolPinHit|BenchmarkCursorScan|BenchmarkTableScanBatch' -benchmem -run '^$$' .
